/**
 * @file
 * Offline schedule-search sweep: for each paper workload, build the
 * heuristic Adyna schedule, then run the anytime SA/beam search
 * (src/search) with a fixed mutation budget and score both on the
 * same probe batches. Two gates ride on the output:
 *
 *  1. Quality — the searched schedule must strictly beat the
 *     heuristic one on at least @c --min-improved of the five
 *     workloads (the search never ships a worse schedule: it falls
 *     back to the heuristic when nothing better materializes).
 *  2. Determinism — the search is re-run with a single-thread pool
 *     and with the --jobs pool; any divergence in cost, winner
 *     fingerprint, or counters is fatal. `BENCH_search.json`
 *     contains no thread-count-dependent field, so the file itself
 *     must be byte-identical across --jobs values (the CI diff
 *     gate).
 *
 * Wall-clock timings go to stderr only; stdout and the JSON stay
 * byte-stable.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.hh"
#include "common/buildinfo.hh"
#include "core/sampling.hh"
#include "core/search_stats.hh"
#include "kernels/store_cache.hh"
#include "search/search.hh"

using namespace adyna;
using namespace adyna::bench;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One workload's search outcome (everything the JSON reports). */
struct Cell
{
    std::string workload;
    Tick heuristicCost = 0;
    Tick searchedCost = 0;
    bool improved = false;
    std::uint64_t winnerFp = 0;
    core::SearchStats stats;
};

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    const int profileBatches =
        static_cast<int>(args.getInt("profile-batches", 40));
    const int probeBatches =
        static_cast<int>(args.getInt("probe", 8));
    const int minImproved =
        static_cast<int>(args.getInt("min-improved", 3));

    search::SearchConfig scfg;
    scfg.chains = static_cast<int>(args.getInt("chains", 4));
    scfg.mutationBudget =
        static_cast<int>(args.getInt("budget", 4000));
    scfg.materializeTop =
        static_cast<int>(args.getInt("materialize-top", 6));
    scfg.seed = p.seed;

    const arch::HwConfig hw;
    printBanner("=== Schedule search: anytime SA/beam over "
                "segmentation and allocation vs the heuristic ===",
                hw, p);
    std::printf("search: chains=%d budget=%d beam=%d probe=%d\n\n",
                scfg.chains, scfg.mutationBudget,
                scfg.materializeTop, probeBatches);

    const std::vector<Workload> workloads =
        makeAllWorkloads(p.batchSize);

    /**
     * One full search on one workload with a private mapper, store
     * cache, and pool — every counter is attributable and the
     * outcome depends only on the configuration, never on --jobs.
     */
    const auto searchWorkload = [&](const Workload &w,
                                    int pool_jobs) {
        costmodel::Mapper mapper(hw.tech);
        kernels::KernelStoreCache storeCache;
        ThreadPool pool(pool_jobs);

        trace::TraceConfig tc = w.bundle.traceConfig;
        tc.batchSize = p.batchSize;

        const auto schedCfg =
            baselines::schedulerConfig(baselines::Design::Adyna);
        const auto policy =
            baselines::execPolicy(baselines::Design::Adyna);

        core::Scheduler scheduler(w.dg, hw, mapper, schedCfg);
        scheduler.setStoreCache(&storeCache);
        scheduler.setThreadPool(&pool);

        // Offline profiling at the compiled batch size (the System /
        // ServeRuntime profiling loop).
        arch::Profiler prof;
        std::map<OpId, double> expectations;
        std::map<OpId, std::vector<std::int64_t>> kernelValues =
            scheduler.initialKernelValues();
        trace::TraceGenerator gen(w.dg, tc,
                                  p.seed ^ 0x517cc1b727220a95ULL);
        for (int b = 0; b < profileBatches; ++b) {
            const trace::BatchRouting routing = gen.next();
            prof.noteBatch();
            for (const auto &[sw, oc] : routing.outcomes)
                prof.recordBranchLoads(sw, oc.branchCounts);
            for (OpId op : w.dg.dynamicOps())
                prof.recordValue(op, routing.dynValue(w.dg, op));
        }
        core::refreshScheduleInputs(prof, true, expectations,
                                    kernelValues);

        const core::Schedule base =
            scheduler.build(expectations, kernelValues, &prof);

        // Probe: the batches both contenders are scored on, drawn
        // after the profile from the same stream (the near future
        // the search optimizes for).
        std::vector<trace::BatchRouting> probe;
        probe.reserve(static_cast<std::size_t>(probeBatches));
        for (int b = 0; b < probeBatches; ++b)
            probe.push_back(gen.next());

        search::ScheduleSearch searcher(w.dg, hw, mapper, policy,
                                        scfg);
        searcher.setThreadPool(&pool);

        Cell cell;
        cell.workload = w.name;
        const auto res = searcher.run(
            scheduler, base, nullptr, expectations, kernelValues,
            &prof, probe, &storeCache, &cell.stats);
        cell.heuristicCost = res.heuristicCost;
        cell.searchedCost = res.searchedCost;
        cell.improved = res.improved;
        cell.winnerFp = search::PlanTree::fingerprint(res.tree);
        return cell;
    };

    std::vector<Cell> cells;
    int improvedCount = 0;
    for (const Workload &w : workloads) {
        const double t0 = nowMs();
        const Cell serial = searchWorkload(w, 1);
        const double t1 = nowMs();
        const Cell parallel = searchWorkload(w, p.jobs);
        const double t2 = nowMs();
        std::fprintf(stderr,
                     "[adyna] %s: search %.0f ms serial, %.0f ms "
                     "with %d jobs\n",
                     w.name.c_str(), t1 - t0, t2 - t1, p.jobs);

        // Determinism gate: the search result is part of the
        // simulation output, so it must be independent of the
        // worker count down to the counters.
        if (serial.heuristicCost != parallel.heuristicCost ||
            serial.searchedCost != parallel.searchedCost ||
            serial.improved != parallel.improved ||
            serial.winnerFp != parallel.winnerFp ||
            serial.stats.candidatesTried !=
                parallel.stats.candidatesTried ||
            serial.stats.candidatesAccepted !=
                parallel.stats.candidatesAccepted ||
            serial.stats.materialized !=
                parallel.stats.materialized ||
            serial.stats.budgetSpentCycles !=
                parallel.stats.budgetSpentCycles)
            ADYNA_FATAL("search diverged across --jobs on ",
                        w.name, ": serial searched ",
                        serial.searchedCost, " (fp ",
                        serial.winnerFp, "), parallel searched ",
                        parallel.searchedCost, " (fp ",
                        parallel.winnerFp, ")");

        if (serial.searchedCost > serial.heuristicCost)
            ADYNA_FATAL("search regressed on ", w.name,
                        ": searched ", serial.searchedCost,
                        " > heuristic ", serial.heuristicCost,
                        " — the fallback must make this impossible");

        improvedCount += serial.improved ? 1 : 0;
        cells.push_back(serial);
    }

    TextTable table("Searched vs heuristic (probe makespan, cycles)");
    table.header({"Workload", "Heuristic", "Searched", "Gain",
                  "Tried", "Materialized", "Spliced", "Rebuilt"});
    for (const Cell &c : cells) {
        const double gain =
            c.heuristicCost > 0
                ? (static_cast<double>(c.heuristicCost) -
                   static_cast<double>(c.searchedCost)) /
                      static_cast<double>(c.heuristicCost)
                : 0.0;
        table.row(
            {c.workload, std::to_string(c.heuristicCost),
             std::to_string(c.searchedCost), TextTable::pct(gain),
             std::to_string(c.stats.candidatesTried),
             std::to_string(c.stats.materialized),
             std::to_string(c.stats.segmentsSpliced),
             std::to_string(c.stats.segmentsRebuilt)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nSearched beat the heuristic on %d of %zu "
                "workloads (gate: >= %d).\n",
                improvedCount, cells.size(), minImproved);

    // ---- BENCH_search.json -----------------------------------------
    // Deliberately no jobs/wall-clock fields: the file must be
    // byte-identical across --jobs values.
    const std::string jsonPath =
        args.getString("json", "BENCH_search.json");
    {
        std::ostringstream os;
        os << "{\n  \"bench\": \"search_sweep\",\n  "
           << buildStampJson()
           << ",\n  \"batch_size\": " << p.batchSize
           << ",\n  \"seed\": " << p.seed
           << ",\n  \"chains\": " << scfg.chains
           << ",\n  \"mutation_budget\": " << scfg.mutationBudget
           << ",\n  \"materialize_top\": " << scfg.materializeTop
           << ",\n  \"probe_batches\": " << probeBatches
           << ",\n  \"improved_count\": " << improvedCount
           << ",\n  \"min_improved\": " << minImproved
           << ",\n  \"workloads\": [\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            os << "    {\"workload\": \"" << c.workload
               << "\", \"heuristic_cost\": " << c.heuristicCost
               << ", \"searched_cost\": " << c.searchedCost
               << ", \"improved\": "
               << (c.improved ? "true" : "false")
               << ", \"winner_fp\": " << c.winnerFp
               << ", \"tried\": " << c.stats.candidatesTried
               << ", \"accepted\": " << c.stats.candidatesAccepted
               << ", \"materialized\": " << c.stats.materialized
               << ", \"segments_spliced\": "
               << c.stats.segmentsSpliced
               << ", \"segments_rebuilt\": "
               << c.stats.segmentsRebuilt
               << ", \"full_rebuilds\": " << c.stats.fullRebuilds
               << ", \"budget_spent\": "
               << c.stats.budgetSpentCycles << "}"
               << (i + 1 < cells.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        std::ofstream out(jsonPath);
        out << os.str();
    }
    std::printf("Wrote %s\n", jsonPath.c_str());

    if (improvedCount < minImproved) {
        std::fprintf(stderr,
                     "[adyna] GATE FAILED: searched beat the "
                     "heuristic on %d workloads, need %d\n",
                     improvedCount, minImproved);
        return 1;
    }
    return 0;
}
