/**
 * @file
 * Figure 11 reproduction: energy breakdown (HBM / SRAM / PE / NoC)
 * of M-tile (L), M-tenant (N), Adyna static (S), and Adyna (A) per
 * workload, normalized to M-tile. Multi-kernel execution cuts energy
 * from every source; memory-bound models (PABEE, Tutel-MoE) are
 * HBM-dominated, DPSNet is dominated by on-chip PE + SRAM energy.
 */

#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchParams p = BenchParams::fromArgs(args);
    const arch::HwConfig hw;
    printBanner("=== Figure 11: energy breakdown ===", hw, p);

    const auto workloads = makeAllWorkloads(p.batchSize);
    const std::vector<std::pair<Design, const char *>> designs{
        {Design::MTile, "L"},
        {Design::MTenant, "N"},
        {Design::AdynaStatic, "S"},
        {Design::Adyna, "A"}};

    TextTable t("Energy breakdown per design (joules; L=M-tile, "
                "N=M-tenant, S=Adyna static, A=Adyna)");
    t.header({"workload", "design", "HBM", "SRAM", "PE", "NoC",
              "total", "vs M-tile"});

    Sweep sweep(p, hw);
    const auto reports =
        sweep.map(workloads.size() * designs.size(), [&](std::size_t i) {
            return sweep.run(workloads[i / designs.size()],
                             designs[i % designs.size()].first, hw);
        });
    sweep.printCacheStats();

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const Workload &w = workloads[wi];
        double mtileTotal = 0.0;
        bool first = true;
        for (std::size_t di = 0; di < designs.size(); ++di) {
            const auto &tag = designs[di].second;
            const auto &rep = reports[wi * designs.size() + di];
            const auto &e = rep.energy;
            const double total = e.total() * 1e-12;
            if (first)
                mtileTotal = total;
            t.row({first ? w.name : "", tag,
                   TextTable::num(e.hbm * 1e-12, 2),
                   TextTable::num(e.sram * 1e-12, 2),
                   TextTable::num(e.pe * 1e-12, 2),
                   TextTable::num(e.noc * 1e-12, 2),
                   TextTable::num(total, 2),
                   TextTable::pct(total / mtileTotal)});
            first = false;
        }
        t.separator();
    }
    t.print(std::cout);
    return 0;
}
