/**
 * @file
 * google-benchmark microbenchmarks of the hot simulator components:
 * the event queue, NoC transfers, HBM gap-filling, the mapping
 * search, kernel dispatch, metadata encode/decode, the sampling
 * algorithm, and trace generation.
 */

#include <benchmark/benchmark.h>

#include "arch/hbm.hh"
#include "arch/noc.hh"
#include "core/sampling.hh"
#include "costmodel/mapper.hh"
#include "des/simulator.hh"
#include "graph/parser.hh"
#include "kernels/codec.hh"
#include "kernels/store.hh"
#include "models/models.hh"
#include "trace/trace.hh"

namespace {

using namespace adyna;

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        des::Simulator sim;
        int fired = 0;
        for (int i = 0; i < 1024; ++i)
            sim.schedule(static_cast<Tick>((i * 37) % 1000),
                         [&fired] { ++fired; });
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueue);

void
BM_NocTransfer(benchmark::State &state)
{
    arch::HwConfig hw;
    arch::Noc noc(hw);
    Tick t = 0;
    for (auto _ : state) {
        const auto tr = noc.transfer(t, 0, 77, 4096);
        benchmark::DoNotOptimize(tr.end);
        t += 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NocTransfer);

void
BM_HbmGapFill(benchmark::State &state)
{
    arch::HwConfig hw;
    arch::Hbm hbm(hw);
    std::uint64_t i = 0;
    for (auto _ : state) {
        // Alternating late/early requests exercise the gap search.
        const Tick t = i % 2 == 0 ? 1000000 + i : i;
        const auto a = hbm.access(t, 0, 4096);
        benchmark::DoNotOptimize(a.end);
        ++i;
        if (i % 4096 == 0)
            hbm.reset();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HbmGapFill);

void
BM_MapperSearch(benchmark::State &state)
{
    costmodel::TechParams tech;
    graph::OpNode op;
    op.kind = graph::OpKind::Conv2d;
    op.dims = graph::LoopDims::conv(128, 256, 128, 14, 14, 3, 3);
    std::int64_t n = 1;
    for (auto _ : state) {
        costmodel::Mapper mapper(tech); // cold cache each iteration
        const auto m = mapper.search(op, 1 + (n++ % 128), 6);
        benchmark::DoNotOptimize(m.tiles);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapperSearch);

void
BM_KernelDispatch(benchmark::State &state)
{
    kernels::KernelStore store;
    for (std::int64_t v : kernels::uniformKernelValues(8192, 32)) {
        kernels::Kernel k;
        k.value = v;
        store.add(std::move(k));
    }
    std::int64_t v = 1;
    for (auto _ : state) {
        const auto d = store.dispatch(1 + (v++ % 8192));
        benchmark::DoNotOptimize(d.index);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelDispatch);

void
BM_KernelCodecRoundTrip(benchmark::State &state)
{
    costmodel::TechParams tech;
    costmodel::Mapper mapper(tech);
    graph::OpNode op;
    op.kind = graph::OpKind::MatMul;
    op.dims = graph::LoopDims::matmul(128, 512, 256);
    const auto m = mapper.search(op, 96, 6);
    for (auto _ : state) {
        const auto img = kernels::encodeKernel(m, 1, tech);
        const auto back = kernels::decodeKernel(img);
        benchmark::DoNotOptimize(back.tiles);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelCodecRoundTrip);

void
BM_ResampleKernelValues(benchmark::State &state)
{
    const auto vals = kernels::uniformKernelValues(8192, 32);
    std::vector<double> freq(vals.size());
    for (std::size_t i = 0; i < freq.size(); ++i)
        freq[i] = static_cast<double>((i * 23) % 97);
    for (auto _ : state) {
        const auto out = core::resampleKernelValues(
            vals, freq, static_cast<int>(vals.size()));
        benchmark::DoNotOptimize(out.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResampleKernelValues);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto bundle = models::buildTutelMoe(128);
    const auto dg = graph::parseModel(bundle.graph);
    trace::TraceGenerator gen(dg, bundle.traceConfig, 1);
    for (auto _ : state) {
        const auto r = gen.next();
        benchmark::DoNotOptimize(r.outcomes.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_EvalKernel(benchmark::State &state)
{
    costmodel::TechParams tech;
    costmodel::Mapper mapper(tech);
    graph::OpNode op;
    op.kind = graph::OpKind::Conv2d;
    op.dims = graph::LoopDims::conv(128, 128, 128, 28, 28, 3, 3);
    const auto m = mapper.search(op, 128, 4);
    std::int64_t v = 1;
    for (auto _ : state) {
        const auto c = costmodel::evalKernel(op, m, 1 + (v++ % 128),
                                             true, tech);
        benchmark::DoNotOptimize(c.cycles);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalKernel);

} // namespace

BENCHMARK_MAIN();
