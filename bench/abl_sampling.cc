/**
 * @file
 * Ablation: the multi-kernel sampling algorithm (Section VII,
 * Algorithm 1). Compares three kernel-set policies under the
 * drifting dynamism distribution:
 *   uniform  - the initial uniform placement, never re-sampled;
 *   initial  - one profile-guided re-sample offline, fixed at runtime
 *              (the Adyna-static policy);
 *   periodic - Algorithm 1 re-run every reconfiguration from the
 *              hardware profiler's frequency tables (full Adyna).
 */

#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 240;
    const arch::HwConfig hw;
    printBanner("=== Ablation: kernel sampling policy under drift ===",
                hw, p);

    const auto names = models::workloadNames();

    TextTable t("Run time (ms), kernel budget 8 per operator "
                "(coarse sets make sampling matter)");
    std::vector<std::string> header{"policy"};
    for (const auto &n : names)
        header.push_back(n);
    header.push_back("geomean slowdown");
    t.header(header);

    struct Policy
    {
        const char *name;
        int profileBatches; // 0 = no offline profile (pure uniform)
        bool periodic;
    };
    const Policy policies[3] = {{"uniform (never sampled)", 0, false},
                                {"initial profile only", 40, false},
                                {"periodic re-sampling", 40, true}};

    Sweep sweep(p, hw);
    const auto flat =
        sweep.map(3 * names.size(), [&](std::size_t i) {
            const Policy &policy = policies[i / names.size()];
            const Workload w = makeWorkload(names[i % names.size()],
                                            p.batchSize);
            trace::TraceConfig cfg = w.bundle.traceConfig;
            cfg.batchSize = p.batchSize;
            auto sched = baselines::schedulerConfig(Design::Adyna);
            sched.kernelBudgetPerOp = 8;
            auto opts = baselines::runOptions(Design::Adyna,
                                              p.batches, p.seed);
            opts.profileBatches = policy.profileBatches;
            opts.resampleKernels = policy.periodic;
            core::System sys(w.dg, cfg, hw, sched,
                             baselines::execPolicy(Design::Adyna),
                             opts, "Adyna");
            sys.setSharedMapper(sweep.sharedMapper());
            return sys.run().timeMs;
        });
    sweep.printCacheStats();

    std::map<int, std::map<std::string, double>> ms;
    for (int pi = 0; pi < 3; ++pi)
        for (std::size_t ni = 0; ni < names.size(); ++ni)
            ms[pi][names[ni]] =
                flat[static_cast<std::size_t>(pi) * names.size() +
                     ni];
    for (int pi = 0; pi < 3; ++pi) {
        std::vector<std::string> cells{policies[pi].name};
        std::vector<double> slow;
        for (const auto &n : names) {
            cells.push_back(TextTable::num(ms[pi][n], 1));
            slow.push_back(ms[pi][n] / ms[2][n]);
        }
        cells.push_back(TextTable::num(geomean(slow), 3));
        t.row(cells);
    }
    t.print(std::cout);
    std::printf("\nShape check: periodic re-sampling is the best "
                "policy overall. Notably, a one-shot profile-guided "
                "set can end up WORSE than the uniform placement "
                "once the distribution drifts away from the profile "
                "-- precisely the paper's argument for re-sampling "
                "periodically from the hardware profiler "
                "(Section VII).\n");
    return 0;
}
