/**
 * @file
 * Figure 6 reproduction (Section V-A/B motivation): a SkipNet-style
 * block with two branches -- B1 with one convolution and B2 with two
 * -- on an 8-tile slice, batch size 8.
 *
 *  (a) Static allocation assumes the worst case on both branches:
 *      compute ratio 1:2 -> 3 tiles for B1, 5 for B2; B1 is then
 *      overloaded in most batches (the trace shows ~5.03 of 8
 *      samples take B1).
 *  (b) Frequency-weighted allocation uses the dyn_dim expectations
 *      (5.03 x 1 op : 2.97 x 2 ops ~ 1:1) -> 4:4 and balances the
 *      average.
 *  (c) Tile sharing adds the 2a:b and a:2b ratios (5:3 and 2:6 with
 *      3 shared tiles) and picks per batch, absorbing the spikes.
 */

#include "bench_common.hh"
#include <cmath>

#include "graph/transforms.hh"

using namespace adyna;
using namespace adyna::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 200;
    const arch::HwConfig hw;
    printBanner("=== Figure 6: allocation strategies on a two-branch "
                "skip block ===",
                hw, p);

    // The block: each sample takes B1 (1 conv) or B2 (2 convs); the
    // observed split matches the paper's SkipNet trace (5.03 : 2.97
    // of 8).
    constexpr std::int64_t kBatch = 8;
    graph::Graph g("fig6");
    auto in = g.addInput("in", graph::LoopDims::matmul(kBatch, 256,
                                                       256));
    auto t = g.addMatMul("pre", in, 256, 256);
    auto merge = graph::addMoE(
        g, "block", t, /*experts=*/2, /*top_k=*/1,
        /*bias=*/{5.03, 2.97}, [](graph::Graph &gg, OpId sw) {
            OpId c1 = gg.addMatMul("conv1", sw, 256, 256);
            return gg.addMatMul("conv2", c1, 256, 256);
        });
    // (Branch bodies only anchor the routing; the trace math below
    // weighs B1 at one conv and B2 at two.)
    g.addOutput("out", merge);
    const graph::DynGraph dg = graph::parseModel(g);
    const OpId sw = dg.switches()[0].switchOp;

    trace::TraceConfig tcfg;
    tcfg.batchSize = kBatch;
    tcfg.driftStrength = 0.0;
    trace::TraceGenerator gen(dg, tcfg, p.seed);

    // Work units per routed sample: B1 = 1 conv, B2 = 2 convs.
    const double opsB1 = 1.0, opsB2 = 2.0;

    // Offline profile (Section V-A): expected dyn_dim values per
    // branch over a profiling window.
    double e1 = 0.0, e2 = 0.0;
    {
        trace::TraceGenerator probe(dg, tcfg, p.seed ^ 0xa5a5);
        const int probeBatches = 40;
        for (int b = 0; b < probeBatches; ++b) {
            const auto r = probe.next();
            const auto &oc = r.outcomes.at(sw);
            e1 += static_cast<double>(oc.branchCounts[0]);
            e2 += static_cast<double>(oc.branchCounts[1]);
        }
        e1 /= probeBatches;
        e2 /= probeBatches;
    }

    // Tile allocations on the 8-tile slice.
    constexpr int kTiles = 8;
    const auto ratioAlloc = [&](double wa, double wb) {
        int a = static_cast<int>(
            std::lround(wa / (wa + wb) * kTiles));
        a = std::clamp(a, 1, kTiles - 1);
        return std::pair<int, int>{a, kTiles - a};
    };
    // (a) static: worst-case sizes on both branches -> ratio 1:2.
    const std::pair<int, int> staticAlloc = ratioAlloc(opsB1, opsB2);
    // (b) frequency-weighted: E[v] x ops per branch (Section V-A).
    const std::pair<int, int> freqAlloc =
        ratioAlloc(e1 * opsB1, e2 * opsB2);
    // (c) tile sharing: the base ratio plus 2a:b and a:2b
    // (Section V-B).
    const std::pair<int, int> shareCfg[3] = {
        freqAlloc, ratioAlloc(2 * e1 * opsB1, e2 * opsB2),
        ratioAlloc(e1 * opsB1, 2 * e2 * opsB2)};
    const int sharedTiles =
        std::max({shareCfg[0].first, shareCfg[1].first,
                  shareCfg[2].first}) -
        std::min({shareCfg[0].first, shareCfg[1].first,
                  shareCfg[2].first});

    std::printf("Profiled expectations: E[B1] = %.2f, E[B2] = %.2f "
                "of %ld (paper trace: 5.03 / 2.97)\n",
                e1, e2, static_cast<long>(kBatch));
    std::printf("Allocations: static %d:%d, frequency-weighted %d:%d, "
                "sharing configs %d:%d / %d:%d / %d:%d (%d shared "
                "tiles; paper: 3:5, 4:4, {4:4, 5:3, 2:6}, 3 "
                "shared)\n\n",
                staticAlloc.first, staticAlloc.second,
                freqAlloc.first, freqAlloc.second, shareCfg[0].first,
                shareCfg[0].second, shareCfg[1].first,
                shareCfg[1].second, shareCfg[2].first,
                shareCfg[2].second, sharedTiles);

    TextTable t1("Per-tile workload trace (first 24 batches; "
                 "work units per tile)");
    t1.header({"batch", "B1 samples", "B2 samples", "static B1",
               "static B2", "freq B1", "freq B2", "shared cfg",
               "shared B1", "shared B2"});

    RunningStats statMax, freqMax, shareMax;
    RunningStats statL1, statL2, freqL1, freqL2, shareL1, shareL2;
    double sumB1 = 0.0, sumB2 = 0.0;
    for (int b = 0; b < p.batches; ++b) {
        const auto routing = gen.next();
        const auto &oc = routing.outcomes.at(sw);
        const double n1 = static_cast<double>(oc.branchCounts[0]);
        const double n2 = static_cast<double>(oc.branchCounts[1]);
        sumB1 += n1;
        sumB2 += n2;

        const auto perTile = [&](std::pair<int, int> alloc) {
            return std::pair<double, double>{
                n1 * opsB1 / alloc.first, n2 * opsB2 / alloc.second};
        };
        const auto [sa1, sa2] = perTile(staticAlloc);
        const auto [fa1, fa2] = perTile(freqAlloc);
        int bestCfg = 0;
        double bestLoad = 1e300;
        for (int c = 0; c < 3; ++c) {
            const auto [x1, x2] = perTile(shareCfg[c]);
            const double m = std::max(x1, x2);
            if (m < bestLoad) {
                bestLoad = m;
                bestCfg = c;
            }
        }
        const auto [sh1, sh2] = perTile(shareCfg[bestCfg]);

        statMax.add(std::max(sa1, sa2));
        freqMax.add(std::max(fa1, fa2));
        shareMax.add(std::max(sh1, sh2));
        statL1.add(sa1);
        statL2.add(sa2);
        freqL1.add(fa1);
        freqL2.add(fa2);
        shareL1.add(sh1);
        shareL2.add(sh2);

        if (b < 24) {
            t1.row({std::to_string(b), TextTable::num(n1, 0),
                    TextTable::num(n2, 0), TextTable::num(sa1, 2),
                    TextTable::num(sa2, 2), TextTable::num(fa1, 2),
                    TextTable::num(fa2, 2),
                    std::to_string(shareCfg[bestCfg].first) + ":" +
                        std::to_string(shareCfg[bestCfg].second),
                    TextTable::num(sh1, 2), TextTable::num(sh2, 2)});
        }
    }
    t1.print(std::cout);

    std::printf("\nObserved dyn_dim expectations over %d batches: "
                "B1 = %.2f, B2 = %.2f of %ld (paper: 5.03 / 2.97)\n",
                p.batches, sumB1 / p.batches, sumB2 / p.batches,
                static_cast<long>(kBatch));

    TextTable t2("Per-tile workload summary");
    t2.header({"allocation", "mean B1", "mean B2", "imbalance",
               "bottleneck mean", "bottleneck stddev",
               "bottleneck max"});
    const auto imb = [](const RunningStats &a, const RunningStats &b) {
        return std::abs(a.mean() - b.mean());
    };
    t2.row({"(a) static", TextTable::num(statL1.mean(), 3),
            TextTable::num(statL2.mean(), 3),
            TextTable::num(imb(statL1, statL2), 3),
            TextTable::num(statMax.mean(), 3),
            TextTable::num(statMax.stddev(), 3),
            TextTable::num(statMax.max(), 3)});
    t2.row({"(b) freq-weighted", TextTable::num(freqL1.mean(), 3),
            TextTable::num(freqL2.mean(), 3),
            TextTable::num(imb(freqL1, freqL2), 3),
            TextTable::num(freqMax.mean(), 3),
            TextTable::num(freqMax.stddev(), 3),
            TextTable::num(freqMax.max(), 3)});
    t2.row({"(c) + tile sharing", TextTable::num(shareL1.mean(), 3),
            TextTable::num(shareL2.mean(), 3),
            TextTable::num(imb(shareL1, shareL2), 3),
            TextTable::num(shareMax.mean(), 3),
            TextTable::num(shareMax.stddev(), 3),
            TextTable::num(shareMax.max(), 3)});
    t2.print(std::cout);
    std::printf("\nShape check (Figure 6): static allocation leaves "
                "B1 persistently overloaded (large imbalance); "
                "frequency weighting balances the branch means; tile "
                "sharing then absorbs the per-batch spikes (lowest "
                "bottleneck mean/stddev/max).\n");
    return 0;
}
