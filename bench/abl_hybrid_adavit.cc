/**
 * @file
 * Extension: the AdaViT hybrid workload (dynamic depth + dynamic
 * region, Section IV's expressiveness claim). Runs every design on
 * the hybrid to show the unified representation and the scheduler
 * handle nested dynamism (layer-skip gates inside a patch-selected
 * region) without special cases.
 */

#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 200;
    const arch::HwConfig hw;
    printBanner("=== Extension: hybrid AdaViT (depth + region) ===",
                hw, p);

    const Workload w = makeWorkload("adavit", p.batchSize);
    std::printf("Graph: %zu ops, %zu switches (%d patch-select + %d "
                "layer-skip), %zu dynamic ops\n\n",
                w.dg.graph().size(), w.dg.switches().size(), 1,
                static_cast<int>(w.dg.switches().size()) - 1,
                w.dg.dynamicOps().size());

    TextTable t("All designs on AdaViT");
    t.header({"design", "time (ms)", "vs M-tile", "PE util",
              "energy (J)"});
    const auto designs = baselines::allDesigns();
    Sweep sweep(p, hw);
    const auto reports =
        sweep.map(designs.size(), [&](std::size_t i) {
            return sweep.run(w, designs[i], hw);
        });
    sweep.printCacheStats();
    double mtileMs = 0.0;
    for (std::size_t di = 0; di < designs.size(); ++di) {
        const auto &rep = reports[di];
        if (designs[di] == Design::MTile)
            mtileMs = rep.timeMs;
        t.row({rep.design, TextTable::num(rep.timeMs, 1),
               TextTable::mult(mtileMs / rep.timeMs),
               TextTable::pct(rep.peUtilization),
               TextTable::num(rep.energy.total() * 1e-12, 2)});
    }
    const auto gpu = runGpuBaseline(w, p);
    t.row({"GPU", TextTable::num(gpu.timeMs, 1),
           TextTable::mult(mtileMs / gpu.timeMs), "-", "-"});
    t.print(std::cout);
    return 0;
}
