/**
 * @file
 * Figure 10 reproduction: PE utilization and DRAM bandwidth
 * utilization of M-tile, M-tenant, Adyna (static), and Adyna.
 * Expected shape: M-tile shows the HIGHEST PE utilization (it is
 * busy with worst-case redundant work), M-tenant the lowest (blocked
 * on memory), and Adyna above Adyna (static) thanks to runtime load
 * balancing.
 */

#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchParams p = BenchParams::fromArgs(args);
    const arch::HwConfig hw;
    printBanner("=== Figure 10: PE and memory-bandwidth utilization ===",
                hw, p);

    const auto workloads = makeAllWorkloads(p.batchSize);
    const std::vector<Design> designs{Design::MTile, Design::MTenant,
                                      Design::AdynaStatic,
                                      Design::Adyna};

    TextTable pe("PE utilization (issued MACs / peak; redundant "
                 "worst-case work counts as busy)");
    TextTable bw("DRAM bandwidth utilization");
    std::vector<std::string> header{"design"};
    for (const Workload &w : workloads)
        header.push_back(w.name);
    header.push_back("mean");
    pe.header(header);
    bw.header(header);

    Sweep sweep(p, hw);
    const auto reports =
        sweep.map(designs.size() * workloads.size(), [&](std::size_t i) {
            return sweep.run(workloads[i % workloads.size()],
                             designs[i / workloads.size()], hw);
        });
    sweep.printCacheStats();

    for (std::size_t di = 0; di < designs.size(); ++di) {
        const Design d = designs[di];
        std::vector<std::string> peRow{baselines::designName(d)};
        std::vector<std::string> bwRow{baselines::designName(d)};
        double peSum = 0.0, bwSum = 0.0;
        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            const auto &rep = reports[di * workloads.size() + wi];
            peRow.push_back(TextTable::pct(rep.peUtilization));
            bwRow.push_back(TextTable::pct(rep.hbmUtilization));
            peSum += rep.peUtilization;
            bwSum += rep.hbmUtilization;
        }
        peRow.push_back(
            TextTable::pct(peSum / static_cast<double>(
                                       workloads.size())));
        bwRow.push_back(
            TextTable::pct(bwSum / static_cast<double>(
                                       workloads.size())));
        pe.row(peRow);
        bw.row(bwRow);
    }
    pe.print(std::cout);
    std::printf("\n");
    bw.print(std::cout);
    std::printf("\nShape checks (Section IX-C): M-tile PE utilization "
                "is inflated by redundant worst-case work; Adyna > "
                "Adyna (static) via runtime balancing; M-tenant is "
                "memory-blocked (highest DRAM, lowest PE).\n");
    return 0;
}
