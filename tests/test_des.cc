/**
 * @file
 * Unit tests for the discrete-event engine: event ordering, FIFO
 * tie-breaking, run-until semantics, and the bandwidth / serial
 * resource reservation models.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "des/resource.hh"
#include "des/simulator.hh"

namespace {

using namespace adyna;
using namespace adyna::des;

TEST(Simulator, ExecutesInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
    EXPECT_EQ(sim.eventsProcessed(), 3u);
}

TEST(Simulator, SameTickFifoOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.schedule(7, [&order, i] { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1, [&] {
        ++fired;
        sim.scheduleIn(5, [&] { ++fired; });
    });
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 6u);
}

TEST(Simulator, RunUntilStopsAtLimit)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(20, [&] { ++fired; });
    sim.schedule(21, [&] { ++fired; });
    sim.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, StepReturnsFalseWhenEmpty)
{
    Simulator sim;
    EXPECT_FALSE(sim.step());
    sim.schedule(0, [] {});
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
}

TEST(BandwidthResource, ServiceTimeCeils)
{
    BandwidthResource link(4.0); // 4 bytes per tick
    EXPECT_EQ(link.serviceTime(0), 0u);
    EXPECT_EQ(link.serviceTime(4), 1u);
    EXPECT_EQ(link.serviceTime(5), 2u);
    EXPECT_EQ(link.serviceTime(8), 2u);
}

TEST(BandwidthResource, BackToBackReservationsQueue)
{
    BandwidthResource link(10.0);
    const auto r1 = link.acquire(0, 100); // 10 ticks
    EXPECT_EQ(r1.start, 0u);
    EXPECT_EQ(r1.end, 10u);
    const auto r2 = link.acquire(0, 50); // queued behind r1
    EXPECT_EQ(r2.start, 10u);
    EXPECT_EQ(r2.end, 15u);
    EXPECT_EQ(link.busyUntil(), 15u);
    EXPECT_EQ(link.bytesServed(), 150u);
}

TEST(BandwidthResource, LateRequestStartsAtRequestTime)
{
    BandwidthResource link(10.0);
    link.acquire(0, 100);
    const auto r = link.acquire(50, 10);
    EXPECT_EQ(r.start, 50u);
    EXPECT_EQ(r.end, 51u);
    // Idle gap is not counted as busy.
    EXPECT_EQ(link.busyTicks(), 11u);
}

TEST(BandwidthResource, ResetClearsState)
{
    BandwidthResource link(10.0);
    link.acquire(0, 100);
    link.reset();
    EXPECT_EQ(link.busyUntil(), 0u);
    EXPECT_EQ(link.bytesServed(), 0u);
    EXPECT_EQ(link.busyTicks(), 0u);
}

TEST(SerialResource, SerializesOverlappingWork)
{
    SerialResource server;
    const auto a = server.acquire(0, 10);
    const auto b = server.acquire(5, 10);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 10u);
    EXPECT_EQ(b.end, 20u);
    EXPECT_EQ(server.busyTicks(), 20u);
}

TEST(SerialResource, ZeroDurationIsInstant)
{
    SerialResource server;
    const auto a = server.acquire(3, 0);
    EXPECT_EQ(a.start, 3u);
    EXPECT_EQ(a.end, 3u);
}

} // namespace

TEST(GapBandwidthResource, FillsEarliestGap)
{
    GapBandwidthResource ch(10.0);
    // Reserve [100, 110) first.
    const auto late = ch.acquire(100, 100);
    EXPECT_EQ(late.start, 100u);
    // An earlier request fits before it.
    const auto early = ch.acquire(0, 100);
    EXPECT_EQ(early.start, 0u);
    EXPECT_EQ(early.end, 10u);
    // A large request does not fit in the [10, 100) gap? It does:
    // 900 bytes = 90 ticks exactly.
    const auto mid = ch.acquire(0, 900);
    EXPECT_EQ(mid.start, 10u);
    EXPECT_EQ(mid.end, 100u);
    // Now everything up to 110 is busy: next goes after.
    const auto next = ch.acquire(0, 10);
    EXPECT_EQ(next.start, 110u);
}

TEST(GapBandwidthResource, RespectsEarliest)
{
    GapBandwidthResource ch(10.0);
    const auto a = ch.acquire(50, 100);
    EXPECT_EQ(a.start, 50u);
    // earliest inside an existing reservation: starts at its end.
    const auto b = ch.acquire(55, 10);
    EXPECT_EQ(b.start, 60u);
}

TEST(GapBandwidthResource, TooSmallGapIsSkipped)
{
    GapBandwidthResource ch(1.0);
    (void)ch.acquire(0, 10);   // [0, 10)
    (void)ch.acquire(15, 10);  // [15, 25)
    // 8 ticks do not fit in the 5-tick gap [10, 15).
    const auto c = ch.acquire(0, 8);
    EXPECT_EQ(c.start, 25u);
    // 5 ticks do.
    const auto d = ch.acquire(0, 5);
    EXPECT_EQ(d.start, 10u);
}

TEST(GapBandwidthResource, AccountingAndReset)
{
    GapBandwidthResource ch(2.0);
    (void)ch.acquire(0, 10);
    (void)ch.acquire(100, 6);
    EXPECT_EQ(ch.bytesServed(), 16u);
    EXPECT_EQ(ch.busyTicks(), 5u + 3u);
    ch.reset();
    EXPECT_EQ(ch.bytesServed(), 0u);
    const auto a = ch.acquire(0, 2);
    EXPECT_EQ(a.start, 0u);
}

TEST(GapBandwidthResource, ManyRandomReservationsStayDisjoint)
{
    GapBandwidthResource ch(1.0);
    Rng rng(99);
    std::vector<Reservation> granted;
    for (int i = 0; i < 200; ++i) {
        const Tick t = static_cast<Tick>(rng.uniformInt(0, 5000));
        const Bytes b = static_cast<Bytes>(rng.uniformInt(1, 40));
        const auto r = ch.acquire(t, b);
        EXPECT_GE(r.start, t);
        granted.push_back(r);
    }
    std::sort(granted.begin(), granted.end(),
              [](const Reservation &a, const Reservation &b) {
                  return a.start < b.start;
              });
    for (std::size_t i = 1; i < granted.size(); ++i)
        EXPECT_LE(granted[i - 1].end, granted[i].start);
}

// ---- typed-event / calendar-queue engine ---------------------------

namespace {

/** Recorder context for typed events: (now, payload a) per firing. */
struct Fired
{
    Simulator *sim = nullptr;
    std::vector<std::pair<Tick, std::uint64_t>> log;

    static void
    handler(void *ctx, std::uint64_t a, std::uint64_t)
    {
        auto *f = static_cast<Fired *>(ctx);
        f->log.emplace_back(f->sim->now(), a);
    }
};

} // namespace

TEST(Simulator, TypedPostDispatchesThroughHandlerTable)
{
    Simulator sim;
    Fired fired;
    fired.sim = &sim;
    sim.setHandler(1, &Fired::handler, &fired);
    sim.post(20, 1, 42);
    sim.postIn(5, 1, 7);
    sim.run();
    ASSERT_EQ(fired.log.size(), 2u);
    EXPECT_EQ(fired.log[0], (std::pair<Tick, std::uint64_t>{5, 7}));
    EXPECT_EQ(fired.log[1], (std::pair<Tick, std::uint64_t>{20, 42}));
    EXPECT_EQ(sim.eventsProcessed(), 2u);
}

TEST(Simulator, InterleavedTypedAndClosureEventsKeepFifoOrder)
{
    // Same-tick events must fire in insertion order regardless of
    // which API posted them -- the calendar ring appends both paths
    // to the same bucket FIFO.
    Simulator sim;
    std::vector<int> order;
    Fired fired;
    fired.sim = &sim;
    Simulator::Handler record = [](void *ctx, std::uint64_t a,
                                   std::uint64_t) {
        static_cast<std::vector<int> *>(ctx)->push_back(
            static_cast<int>(a));
    };
    sim.setHandler(1, record, &order);
    for (int i = 0; i < 8; ++i) {
        if (i % 2 == 0)
            sim.post(50, 1, static_cast<std::uint64_t>(i));
        else
            sim.schedule(50, [&order, i] { order.push_back(i); });
    }
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Simulator, MatchesLegacyOrderAcrossWindowJumps)
{
    // The same deterministic stream through both engines, with
    // deltas straddling the ring window so events migrate ring ->
    // heap -> ring. The fired sequence must be identical.
    const auto delta = [](std::uint64_t id) -> Tick {
        if (id % 5 == 0)
            return 3000 + id % 257; // far future: overflow heap
        return id % 3;              // same-tick and near-future
    };
    const int kChains = 16, kHops = 200;

    std::vector<std::pair<Tick, std::uint64_t>> legacyLog;
    {
        LegacySimulator sim;
        std::function<void(std::uint64_t, int)> hop =
            [&](std::uint64_t id, int depth) {
                legacyLog.emplace_back(sim.now(), id);
                if (depth < kHops)
                    sim.schedule(sim.now() + delta(id + depth),
                                 [&hop, id, depth] {
                                     hop(id, depth + 1);
                                 });
            };
        for (std::uint64_t c = 0; c < kChains; ++c)
            sim.schedule(delta(c), [&hop, c] { hop(c, 0); });
        sim.run();
    }

    std::vector<std::pair<Tick, std::uint64_t>> typedLog;
    {
        Simulator sim;
        struct Ctx
        {
            Simulator *sim;
            std::vector<std::pair<Tick, std::uint64_t>> *log;
            Tick (*delta)(std::uint64_t);
        };
        // Re-wrap the lambda as a plain function pointer for Ctx.
        Ctx ctx{&sim, &typedLog, nullptr};
        Simulator::Handler hop = [](void *c, std::uint64_t id,
                                    std::uint64_t depth) {
            auto *ctx = static_cast<Ctx *>(c);
            ctx->log->emplace_back(ctx->sim->now(), id);
            if (depth < kHops) {
                const Tick d = (id + depth) % 5 == 0
                                   ? 3000 + (id + depth) % 257
                                   : (id + depth) % 3;
                ctx->sim->post(ctx->sim->now() + d, 1, id, depth + 1);
            }
        };
        sim.setHandler(1, hop, &ctx);
        for (std::uint64_t c = 0; c < kChains; ++c)
            sim.post(delta(c), 1, c, 0);
        sim.run();
    }
    EXPECT_EQ(typedLog, legacyLog);
}

TEST(Simulator, ArenaSlotsStayBoundedUnderChurn)
{
    // Steady-state churn recycles slots through the free-list: the
    // arena must not grow past the peak number of in-flight events.
    Simulator sim;

    struct Churn
    {
        Simulator *sim;
        int remaining;

        static void
        handler(void *ctx, std::uint64_t, std::uint64_t)
        {
            auto *c = static_cast<Churn *>(ctx);
            if (c->remaining-- > 0)
                c->sim->postIn(1 + c->remaining % 17, 2);
        }
    };
    Churn churn{&sim, 100000};
    sim.setHandler(2, &Churn::handler, &churn);
    for (int i = 0; i < 32; ++i)
        sim.postIn(1 + i, 2);
    sim.run();
    // 100k events recycled through the free-list: the arena never
    // grows past the peak in-flight count (32 chains, plus at most
    // one slot for the event being dispatched).
    EXPECT_LE(sim.arenaSlots(), 33u);
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_EQ(sim.eventsProcessed(), 100032u);
}

TEST(Simulator, PendingCountsRingAndHeap)
{
    Simulator sim;
    Fired fired;
    fired.sim = &sim;
    sim.setHandler(1, &Fired::handler, &fired);
    sim.post(1, 1);      // ring
    sim.post(2, 1);      // ring
    sim.post(500000, 1); // far future: overflow heap
    EXPECT_EQ(sim.pending(), 3u);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(sim.pending(), 2u);
    sim.run();
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_EQ(fired.log.size(), 3u);
    EXPECT_EQ(fired.log.back().first, 500000u);
}

TEST(GapBandwidthResource, TrimBoundsReservationCount)
{
    // Monotone acquire + periodic trim (the engine's period-barrier
    // pattern) must keep the live interval list bounded instead of
    // grow-only.
    GapBandwidthResource ch(1.0);
    std::size_t peak = 0;
    Tick t = 0;
    for (int period = 0; period < 200; ++period) {
        for (int i = 0; i < 16; ++i) {
            (void)ch.acquire(t, 4);
            t += 10; // gaps between reservations stay unmerged
        }
        ch.trim(t);
        peak = std::max(peak, ch.reservationCount());
    }
    // Everything ending at or before the barrier is gone; only
    // intervals granted after the last barrier could survive.
    EXPECT_EQ(ch.reservationCount(), 0u);
    EXPECT_LE(peak, 16u);
}

TEST(GapBandwidthResource, TrimPreservesAcquireTimings)
{
    // Two channels fed the same monotone request stream, one trimmed
    // at every barrier: every grant must be identical.
    GapBandwidthResource trimmed(2.0), reference(2.0);
    Rng rng(7);
    Tick barrier = 0;
    for (int period = 0; period < 50; ++period) {
        Tick t = barrier;
        for (int i = 0; i < 12; ++i) {
            t += static_cast<Tick>(rng.uniformInt(0, 9));
            const Bytes b = static_cast<Bytes>(rng.uniformInt(1, 32));
            const auto a = trimmed.acquire(t, b);
            const auto c = reference.acquire(t, b);
            EXPECT_EQ(a.start, c.start);
            EXPECT_EQ(a.end, c.end);
            barrier = std::max(barrier, a.end);
        }
        trimmed.trim(barrier);
    }
    EXPECT_EQ(trimmed.bytesServed(), reference.bytesServed());
    EXPECT_EQ(trimmed.busyTicks(), reference.busyTicks());
}
