/**
 * @file
 * Unit tests for the discrete-event engine: event ordering, FIFO
 * tie-breaking, run-until semantics, and the bandwidth / serial
 * resource reservation models.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "des/resource.hh"
#include "des/simulator.hh"

namespace {

using namespace adyna;
using namespace adyna::des;

TEST(Simulator, ExecutesInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
    EXPECT_EQ(sim.eventsProcessed(), 3u);
}

TEST(Simulator, SameTickFifoOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.schedule(7, [&order, i] { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1, [&] {
        ++fired;
        sim.scheduleIn(5, [&] { ++fired; });
    });
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 6u);
}

TEST(Simulator, RunUntilStopsAtLimit)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(20, [&] { ++fired; });
    sim.schedule(21, [&] { ++fired; });
    sim.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, StepReturnsFalseWhenEmpty)
{
    Simulator sim;
    EXPECT_FALSE(sim.step());
    sim.schedule(0, [] {});
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
}

TEST(BandwidthResource, ServiceTimeCeils)
{
    BandwidthResource link(4.0); // 4 bytes per tick
    EXPECT_EQ(link.serviceTime(0), 0u);
    EXPECT_EQ(link.serviceTime(4), 1u);
    EXPECT_EQ(link.serviceTime(5), 2u);
    EXPECT_EQ(link.serviceTime(8), 2u);
}

TEST(BandwidthResource, BackToBackReservationsQueue)
{
    BandwidthResource link(10.0);
    const auto r1 = link.acquire(0, 100); // 10 ticks
    EXPECT_EQ(r1.start, 0u);
    EXPECT_EQ(r1.end, 10u);
    const auto r2 = link.acquire(0, 50); // queued behind r1
    EXPECT_EQ(r2.start, 10u);
    EXPECT_EQ(r2.end, 15u);
    EXPECT_EQ(link.busyUntil(), 15u);
    EXPECT_EQ(link.bytesServed(), 150u);
}

TEST(BandwidthResource, LateRequestStartsAtRequestTime)
{
    BandwidthResource link(10.0);
    link.acquire(0, 100);
    const auto r = link.acquire(50, 10);
    EXPECT_EQ(r.start, 50u);
    EXPECT_EQ(r.end, 51u);
    // Idle gap is not counted as busy.
    EXPECT_EQ(link.busyTicks(), 11u);
}

TEST(BandwidthResource, ResetClearsState)
{
    BandwidthResource link(10.0);
    link.acquire(0, 100);
    link.reset();
    EXPECT_EQ(link.busyUntil(), 0u);
    EXPECT_EQ(link.bytesServed(), 0u);
    EXPECT_EQ(link.busyTicks(), 0u);
}

TEST(SerialResource, SerializesOverlappingWork)
{
    SerialResource server;
    const auto a = server.acquire(0, 10);
    const auto b = server.acquire(5, 10);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 10u);
    EXPECT_EQ(b.end, 20u);
    EXPECT_EQ(server.busyTicks(), 20u);
}

TEST(SerialResource, ZeroDurationIsInstant)
{
    SerialResource server;
    const auto a = server.acquire(3, 0);
    EXPECT_EQ(a.start, 3u);
    EXPECT_EQ(a.end, 3u);
}

} // namespace

TEST(GapBandwidthResource, FillsEarliestGap)
{
    GapBandwidthResource ch(10.0);
    // Reserve [100, 110) first.
    const auto late = ch.acquire(100, 100);
    EXPECT_EQ(late.start, 100u);
    // An earlier request fits before it.
    const auto early = ch.acquire(0, 100);
    EXPECT_EQ(early.start, 0u);
    EXPECT_EQ(early.end, 10u);
    // A large request does not fit in the [10, 100) gap? It does:
    // 900 bytes = 90 ticks exactly.
    const auto mid = ch.acquire(0, 900);
    EXPECT_EQ(mid.start, 10u);
    EXPECT_EQ(mid.end, 100u);
    // Now everything up to 110 is busy: next goes after.
    const auto next = ch.acquire(0, 10);
    EXPECT_EQ(next.start, 110u);
}

TEST(GapBandwidthResource, RespectsEarliest)
{
    GapBandwidthResource ch(10.0);
    const auto a = ch.acquire(50, 100);
    EXPECT_EQ(a.start, 50u);
    // earliest inside an existing reservation: starts at its end.
    const auto b = ch.acquire(55, 10);
    EXPECT_EQ(b.start, 60u);
}

TEST(GapBandwidthResource, TooSmallGapIsSkipped)
{
    GapBandwidthResource ch(1.0);
    (void)ch.acquire(0, 10);   // [0, 10)
    (void)ch.acquire(15, 10);  // [15, 25)
    // 8 ticks do not fit in the 5-tick gap [10, 15).
    const auto c = ch.acquire(0, 8);
    EXPECT_EQ(c.start, 25u);
    // 5 ticks do.
    const auto d = ch.acquire(0, 5);
    EXPECT_EQ(d.start, 10u);
}

TEST(GapBandwidthResource, AccountingAndReset)
{
    GapBandwidthResource ch(2.0);
    (void)ch.acquire(0, 10);
    (void)ch.acquire(100, 6);
    EXPECT_EQ(ch.bytesServed(), 16u);
    EXPECT_EQ(ch.busyTicks(), 5u + 3u);
    ch.reset();
    EXPECT_EQ(ch.bytesServed(), 0u);
    const auto a = ch.acquire(0, 2);
    EXPECT_EQ(a.start, 0u);
}

TEST(GapBandwidthResource, ManyRandomReservationsStayDisjoint)
{
    GapBandwidthResource ch(1.0);
    Rng rng(99);
    std::vector<Reservation> granted;
    for (int i = 0; i < 200; ++i) {
        const Tick t = static_cast<Tick>(rng.uniformInt(0, 5000));
        const Bytes b = static_cast<Bytes>(rng.uniformInt(1, 40));
        const auto r = ch.acquire(t, b);
        EXPECT_GE(r.start, t);
        granted.push_back(r);
    }
    std::sort(granted.begin(), granted.end(),
              [](const Reservation &a, const Reservation &b) {
                  return a.start < b.start;
              });
    for (std::size_t i = 1; i < granted.size(); ++i)
        EXPECT_LE(granted[i - 1].end, granted[i].start);
}
