/**
 * @file
 * Unit tests for the common substrate: RNG determinism and
 * distribution sanity, statistics containers, table rendering, and
 * CLI parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "common/cli.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace {

using namespace adyna;

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(2, 5);
        ASSERT_GE(v, 2);
        ASSERT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(9, 9), 9);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, CategoricalRespectsWeights)
{
    Rng rng(13);
    std::vector<double> weights{1.0, 3.0};
    int ones = 0;
    for (int i = 0; i < 20000; ++i)
        ones += rng.categorical(weights) == 1;
    EXPECT_NEAR(ones / 20000.0, 0.75, 0.02);
}

TEST(Rng, CategoricalSkipsZeroWeight)
{
    Rng rng(17);
    std::vector<double> weights{0.0, 1.0, 0.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, BinomialSmallNExact)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.binomial(10, 0.4));
    EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(Rng, BinomialLargeNApproximation)
{
    Rng rng(23);
    RunningStats stats;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.binomial(1000, 0.25);
        ASSERT_LE(v, 1000u);
        stats.add(v);
    }
    EXPECT_NEAR(stats.mean(), 250.0, 3.0);
}

TEST(Rng, BinomialEdgeProbabilities)
{
    Rng rng(29);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 2);
}

// ------------------------------------------------------- RunningStats

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsCombinedStream)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        a.add(i);
        all.add(i);
    }
    for (int i = 50; i < 120; ++i) {
        b.add(i * 0.5);
        all.add(i * 0.5);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeIntoEmpty)
{
    RunningStats a, b;
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

// ------------------------------------------------------ FreqHistogram

TEST(FreqHistogram, ExpectationAndVariance)
{
    FreqHistogram h;
    h.add(2, 3); // three 2s
    h.add(6, 1); // one 6
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.expectation(), 3.0);
    EXPECT_DOUBLE_EQ(h.variance(), 3.0);
    EXPECT_EQ(h.minValue(), 2);
    EXPECT_EQ(h.maxValue(), 6);
}

TEST(FreqHistogram, EmptyDefaults)
{
    FreqHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.expectation(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(FreqHistogram, QuantileStepsThroughMass)
{
    FreqHistogram h;
    h.add(1, 50);
    h.add(10, 50);
    EXPECT_EQ(h.quantile(0.0), 1);
    EXPECT_EQ(h.quantile(0.5), 1);
    EXPECT_EQ(h.quantile(0.51), 10);
    EXPECT_EQ(h.quantile(1.0), 10);
}

TEST(FreqHistogram, MergeAddsCounts)
{
    FreqHistogram a, b;
    a.add(1, 2);
    b.add(1, 3);
    b.add(5, 1);
    a.merge(b);
    EXPECT_EQ(a.count(1), 5u);
    EXPECT_EQ(a.count(5), 1u);
    EXPECT_EQ(a.total(), 6u);
}

TEST(FreqHistogram, DecayHalvesAndDropsZeros)
{
    FreqHistogram h;
    h.add(1, 100);
    h.add(2, 1);
    h.decay(0.5);
    EXPECT_EQ(h.count(1), 50u);
    // 0.5 rounds to 1 (llround of 0.5 is 1), still present.
    EXPECT_EQ(h.count(2), 1u);
    h.decay(0.0);
    EXPECT_TRUE(h.empty());
}

TEST(FreqHistogram, SortedPairsAscending)
{
    FreqHistogram h;
    h.add(9);
    h.add(1);
    h.add(5);
    const auto pairs = h.sorted();
    ASSERT_EQ(pairs.size(), 3u);
    EXPECT_EQ(pairs[0].first, 1);
    EXPECT_EQ(pairs[2].first, 9);
}

TEST(Geomean, KnownValue)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_EQ(geomean({}), 0.0);
}

// ---------------------------------------------------------- TextTable

TEST(TextTable, AlignsColumns)
{
    TextTable t("Demo");
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    const std::string s = t.str();
    EXPECT_NE(s.find("Demo"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    // Both value cells start at the same column.
    std::istringstream is(s);
    std::string line;
    std::size_t col1 = 0, col2 = 0;
    while (std::getline(is, line)) {
        if (line.rfind("a ", 0) == 0)
            col1 = line.find('1');
        if (line.rfind("longer", 0) == 0)
            col2 = line.find("22");
    }
    EXPECT_EQ(col1, col2);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::mult(1.7, 2), "1.70x");
    EXPECT_EQ(TextTable::pct(0.873, 1), "87.3%");
}

// ------------------------------------------------------------ CliArgs

TEST(CliArgs, ParsesAllForms)
{
    const char *argv[] = {"prog", "pos1", "--batches", "200",
                          "--seed=7", "--x", "1.5", "--verbose"};
    CliArgs args(8, argv);
    EXPECT_EQ(args.getInt("batches", 0), 200);
    EXPECT_EQ(args.getInt("seed", 0), 7);
    EXPECT_TRUE(args.getBool("verbose", false));
    EXPECT_DOUBLE_EQ(args.getDouble("x", 0.0), 1.5);
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos1");
    EXPECT_EQ(args.getString("missing", "dflt"), "dflt");
    EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, BooleanExplicitValues)
{
    const char *argv[] = {"prog", "--a=true", "--b=false", "--c=0"};
    CliArgs args(4, argv);
    EXPECT_TRUE(args.getBool("a", false));
    EXPECT_FALSE(args.getBool("b", true));
    EXPECT_FALSE(args.getBool("c", true));
}

// ---------------------------------------------------------- percentile

TEST(Percentile, InterpolatesBetweenOrderStatistics)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
    // Unsorted input is sorted internally.
    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 2.0);
}

// ------------------------------------------------------ distributionL1

TEST(DistributionL1, IdenticalZeroDisjointTwo)
{
    FreqHistogram a, b;
    for (int i = 0; i < 10; ++i) {
        a.add(i % 3);
        b.add(i % 3);
    }
    EXPECT_DOUBLE_EQ(distributionL1(a, b), 0.0);

    FreqHistogram c;
    c.add(100, 10);
    EXPECT_DOUBLE_EQ(distributionL1(a, c, /*buckets=*/8), 2.0);
    // One empty side: nothing comparable.
    EXPECT_DOUBLE_EQ(distributionL1(a, FreqHistogram{}), 0.0);
}

TEST(DistributionL1, NormalizedSoCountsDoNotMatter)
{
    // Same shape at 10x the mass: zero distance.
    FreqHistogram a, b;
    a.add(1, 3);
    a.add(2, 1);
    b.add(1, 30);
    b.add(2, 10);
    EXPECT_DOUBLE_EQ(distributionL1(a, b), 0.0);
    // Half the mass moved: distance 1.
    FreqHistogram c;
    c.add(1, 1);
    c.add(2, 3);
    EXPECT_NEAR(distributionL1(a, c), 1.0, 1e-12);
}

} // namespace
