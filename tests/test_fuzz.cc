/**
 * @file
 * Fuzz tests: randomly generated DynNNs pushed through the whole
 * stack -- parse, trace generation, scheduling, and simulation on
 * every design point -- asserting structural invariants and sane
 * metrics rather than specific numbers. Each seed is a distinct
 * model topology.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/designs.hh"
#include "graph/parser.hh"
#include "models/random.hh"
#include "trace/trace.hh"

namespace {

using namespace adyna;
using namespace adyna::graph;
using namespace adyna::models;

class RandomModels : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    ModelBundle
    bundle() const
    {
        RandomModelParams params;
        params.batch = 16;
        return buildRandomDynNN(params, GetParam());
    }
};

TEST_P(RandomModels, BuildsValidatesAndParses)
{
    const ModelBundle b = bundle();
    b.graph.validate();
    const DynGraph dg = parseModel(b.graph);
    EXPECT_GT(dg.graph().size(), 3u);
    // Every switch has the declared number of branch slots.
    for (const SwitchInfo &sw : dg.switches()) {
        const auto &node = dg.graph().node(sw.switchOp);
        EXPECT_EQ(sw.numBranches(), node.policy.numBranches);
    }
    // Dynamic ops always know their controlling switch.
    for (OpId op : dg.dynamicOps()) {
        EXPECT_NE(dg.info(op).ownerSwitch, kInvalidOp);
        EXPECT_GT(dg.maxDyn(op), 0);
    }
}

TEST_P(RandomModels, TraceValuesStayInBounds)
{
    const ModelBundle b = bundle();
    const DynGraph dg = parseModel(b.graph);
    trace::TraceGenerator gen(dg, b.traceConfig, GetParam() * 31 + 7);
    for (int i = 0; i < 12; ++i) {
        const auto r = gen.next();
        for (OpId op : dg.dynamicOps()) {
            const auto v = r.dynValue(dg, op);
            EXPECT_GE(v, 0) << dg.graph().node(op).name;
            EXPECT_LE(v, dg.maxDyn(op)) << dg.graph().node(op).name;
        }
    }
}

TEST_P(RandomModels, SimulatesOnEveryDesign)
{
    const ModelBundle b = bundle();
    const DynGraph dg = parseModel(b.graph);
    const arch::HwConfig hw;
    double fullKernelMs = 0.0;
    for (auto design : baselines::allDesigns()) {
        auto sys = baselines::makeSystem(dg, b.traceConfig, hw, design,
                                         /*batches=*/12,
                                         /*seed=*/GetParam());
        const auto rep = sys.run();
        EXPECT_GT(rep.cycles, 0u) << rep.design;
        EXPECT_GT(rep.peUtilization, 0.0) << rep.design;
        EXPECT_LE(rep.peUtilization, 1.0) << rep.design;
        EXPECT_GE(rep.issuedMacs, rep.usefulMacs) << rep.design;
        EXPECT_EQ(rep.batchEnds.size(), 12u) << rep.design;
        if (design == baselines::Design::FullKernel)
            fullKernelMs = rep.timeMs;
    }
    EXPECT_GT(fullKernelMs, 0.0);
}

TEST_P(RandomModels, DeterministicInSeed)
{
    RandomModelParams params;
    params.batch = 16;
    const ModelBundle a = buildRandomDynNN(params, GetParam());
    const ModelBundle c = buildRandomDynNN(params, GetParam());
    ASSERT_EQ(a.graph.size(), c.graph.size());
    for (std::size_t i = 0; i < a.graph.size(); ++i) {
        const auto &na = a.graph.node(static_cast<OpId>(i));
        const auto &nc = c.graph.node(static_cast<OpId>(i));
        EXPECT_EQ(na.name, nc.name);
        EXPECT_EQ(na.dims, nc.dims);
        EXPECT_EQ(na.inputs, nc.inputs);
    }
    // Different seeds produce different topologies (almost surely).
    const ModelBundle d = buildRandomDynNN(params, GetParam() + 1000);
    EXPECT_TRUE(d.graph.size() != a.graph.size() ||
                d.graph.node(1).dims != a.graph.node(1).dims);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModels,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
