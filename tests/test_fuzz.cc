/**
 * @file
 * Fuzz tests: randomly generated DynNNs pushed through the whole
 * stack -- parse, trace generation, scheduling, and simulation on
 * every design point -- asserting structural invariants and sane
 * metrics rather than specific numbers. Each seed is a distinct
 * model topology.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/designs.hh"
#include "common/rng.hh"
#include "core/report_io.hh"
#include "fault/fault.hh"
#include "graph/parser.hh"
#include "models/random.hh"
#include "trace/trace.hh"

namespace {

using namespace adyna;
using namespace adyna::graph;
using namespace adyna::models;

class RandomModels : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    ModelBundle
    bundle() const
    {
        RandomModelParams params;
        params.batch = 16;
        return buildRandomDynNN(params, GetParam());
    }
};

TEST_P(RandomModels, BuildsValidatesAndParses)
{
    const ModelBundle b = bundle();
    b.graph.validate();
    const DynGraph dg = parseModel(b.graph);
    EXPECT_GT(dg.graph().size(), 3u);
    // Every switch has the declared number of branch slots.
    for (const SwitchInfo &sw : dg.switches()) {
        const auto &node = dg.graph().node(sw.switchOp);
        EXPECT_EQ(sw.numBranches(), node.policy.numBranches);
    }
    // Dynamic ops always know their controlling switch.
    for (OpId op : dg.dynamicOps()) {
        EXPECT_NE(dg.info(op).ownerSwitch, kInvalidOp);
        EXPECT_GT(dg.maxDyn(op), 0);
    }
}

TEST_P(RandomModels, TraceValuesStayInBounds)
{
    const ModelBundle b = bundle();
    const DynGraph dg = parseModel(b.graph);
    trace::TraceGenerator gen(dg, b.traceConfig, GetParam() * 31 + 7);
    for (int i = 0; i < 12; ++i) {
        const auto r = gen.next();
        for (OpId op : dg.dynamicOps()) {
            const auto v = r.dynValue(dg, op);
            EXPECT_GE(v, 0) << dg.graph().node(op).name;
            EXPECT_LE(v, dg.maxDyn(op)) << dg.graph().node(op).name;
        }
    }
}

TEST_P(RandomModels, SimulatesOnEveryDesign)
{
    const ModelBundle b = bundle();
    const DynGraph dg = parseModel(b.graph);
    const arch::HwConfig hw;
    double fullKernelMs = 0.0;
    for (auto design : baselines::allDesigns()) {
        auto sys = baselines::makeSystem(dg, b.traceConfig, hw, design,
                                         /*batches=*/12,
                                         /*seed=*/GetParam());
        const auto rep = sys.run();
        EXPECT_GT(rep.cycles, 0u) << rep.design;
        EXPECT_GT(rep.peUtilization, 0.0) << rep.design;
        EXPECT_LE(rep.peUtilization, 1.0) << rep.design;
        EXPECT_GE(rep.issuedMacs, rep.usefulMacs) << rep.design;
        EXPECT_EQ(rep.batchEnds.size(), 12u) << rep.design;
        if (design == baselines::Design::FullKernel)
            fullKernelMs = rep.timeMs;
    }
    EXPECT_GT(fullKernelMs, 0.0);
}

TEST_P(RandomModels, DeterministicInSeed)
{
    RandomModelParams params;
    params.batch = 16;
    const ModelBundle a = buildRandomDynNN(params, GetParam());
    const ModelBundle c = buildRandomDynNN(params, GetParam());
    ASSERT_EQ(a.graph.size(), c.graph.size());
    for (std::size_t i = 0; i < a.graph.size(); ++i) {
        const auto &na = a.graph.node(static_cast<OpId>(i));
        const auto &nc = c.graph.node(static_cast<OpId>(i));
        EXPECT_EQ(na.name, nc.name);
        EXPECT_EQ(na.dims, nc.dims);
        EXPECT_EQ(na.inputs, nc.inputs);
    }
    // Different seeds produce different topologies (almost surely).
    const ModelBundle d = buildRandomDynNN(params, GetParam() + 1000);
    EXPECT_TRUE(d.graph.size() != a.graph.size() ||
                d.graph.node(1).dims != a.graph.node(1).dims);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModels,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------------------------------------- fault fuzz

class FaultFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FaultFuzz, ParserSurvivesGarbage)
{
    Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
    for (int i = 0; i < 200; ++i) {
        const int len = static_cast<int>(rng.uniformInt(0, 64));
        std::string text;
        for (int c = 0; c < len; ++c)
            text.push_back(
                static_cast<char>(rng.uniformInt(1, 127)));
        fault::FaultPlan plan;
        std::string err;
        // Must never crash; a rejected parse must say why.
        if (!fault::parseFaultPlan(text, plan, &err))
            EXPECT_FALSE(err.empty()) << text;
    }
}

TEST_P(FaultFuzz, ParserSurvivesMutatedValidPlans)
{
    fault::RandomFaultConfig cfg;
    cfg.tileFails = 2;
    cfg.linkDowns = 2;
    cfg.linkDegrades = 2;
    cfg.probeDropWindows = 1;
    cfg.storeFitWindows = 1;
    cfg.chipFails = 1;
    cfg.chipSlows = 1;
    cfg.linkFlakies = 1;
    cfg.payloadCorrupts = 1;
    const fault::FaultPlan seedPlan =
        fault::randomFaultPlan(cfg, GetParam());
    const std::string valid = seedPlan.str();

    // The untouched text must round-trip exactly.
    fault::FaultPlan parsed;
    ASSERT_TRUE(fault::parseFaultPlan(valid, parsed));
    EXPECT_EQ(parsed, seedPlan);

    Rng rng(GetParam() * 31 + 7);
    for (int i = 0; i < 200; ++i) {
        std::string text = valid;
        const int edits = static_cast<int>(rng.uniformInt(1, 4));
        for (int e = 0; e < edits && !text.empty(); ++e) {
            const auto pos = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      text.size() - 1)));
            switch (rng.uniformInt(0, 2)) {
            case 0:
                text[pos] =
                    static_cast<char>(rng.uniformInt(32, 126));
                break;
            case 1:
                text.erase(pos, 1);
                break;
            default:
                text.insert(pos, 1,
                            static_cast<char>(
                                rng.uniformInt(32, 126)));
            }
        }
        fault::FaultPlan plan;
        // Mutations may stay valid or become garbage; either way the
        // parser must not crash, and accepted plans must round-trip
        // through their canonical text.
        if (fault::parseFaultPlan(text, plan)) {
            fault::FaultPlan again;
            ASSERT_TRUE(fault::parseFaultPlan(plan.str(), again))
                << text;
            EXPECT_EQ(plan, again) << text;
        }
    }
}

TEST_P(FaultFuzz, RandomTimelineRunsComplete)
{
    // A random model under a random fault timeline: the adaptive
    // design fails over, the run finishes, and the metrics stay sane.
    RandomModelParams params;
    params.batch = 16;
    const ModelBundle b = buildRandomDynNN(params, GetParam());
    const DynGraph dg = parseModel(b.graph);
    const arch::HwConfig hw;

    fault::RandomFaultConfig fcfg;
    fcfg.horizon = 40'000'000;
    fcfg.tileFails = static_cast<int>(GetParam() % 3) + 1;
    fcfg.linkDowns = 1;
    fcfg.linkDegrades = 1;
    fcfg.probeDropWindows = 1;
    fcfg.gridRows = hw.gridRows;
    fcfg.gridCols = hw.gridCols;
    const fault::FaultPlan plan =
        fault::randomFaultPlan(fcfg, GetParam() * 131 + 5);

    auto sys = baselines::makeSystem(dg, b.traceConfig, hw,
                                     baselines::Design::Adyna,
                                     /*batches=*/12,
                                     /*seed=*/GetParam());
    sys.setFaultPlan(plan, GetParam());
    const auto rep = sys.run();
    EXPECT_GT(rep.cycles, 0u);
    EXPECT_EQ(rep.batchEnds.size(), 12u);
    EXPECT_LE(rep.peUtilization, 1.0);
    EXPECT_GE(rep.issuedMacs, rep.usefulMacs);
    EXPECT_GE(rep.fault.tileFailEvents + rep.fault.linkDownEvents +
                  rep.fault.linkDegradeEvents +
                  rep.fault.probeDropWindows,
              0u);
}

TEST_P(FaultFuzz, EmptyPlanReportsAreByteIdentical)
{
    RandomModelParams params;
    params.batch = 16;
    const ModelBundle b = buildRandomDynNN(params, GetParam());
    const DynGraph dg = parseModel(b.graph);
    const arch::HwConfig hw;

    auto plainSys = baselines::makeSystem(dg, b.traceConfig, hw,
                                          baselines::Design::Adyna,
                                          /*batches=*/12,
                                          /*seed=*/GetParam());
    const auto plain = plainSys.run();

    auto faultSys = baselines::makeSystem(dg, b.traceConfig, hw,
                                          baselines::Design::Adyna,
                                          /*batches=*/12,
                                          /*seed=*/GetParam());
    faultSys.setFaultPlan(fault::FaultPlan{}, GetParam() + 17);
    const auto empty = faultSys.run();

    EXPECT_EQ(core::toJson(plain, /*include_batches=*/true),
              core::toJson(empty, /*include_batches=*/true));
    EXPECT_EQ(core::toCsvRow(plain), core::toCsvRow(empty));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
