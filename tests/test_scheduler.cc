/**
 * @file
 * Unit tests for the dynamism-aware scheduler (Section V):
 * segmentation atoms and capacity, frequency-weighted allocation,
 * weight residency, tile sharing pairs, branch grouping, and kernel
 * store construction.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "arch/profiler.hh"
#include "core/scheduler.hh"
#include "graph/parser.hh"
#include "graph/transforms.hh"
#include "models/models.hh"
#include "trace/trace.hh"

namespace {

using namespace adyna;
using namespace adyna::core;
using namespace adyna::graph;

arch::HwConfig
hw()
{
    return arch::HwConfig{};
}

/** Two-branch MoE-style model whose branches can pair for sharing. */
DynGraph
pairableModel(std::int64_t batch)
{
    Graph g("pairable");
    OpId in = g.addInput("in", LoopDims::matmul(batch, 512, 512));
    OpId t = g.addMatMul("proj", in, 512, 512);
    OpId merge = addMoE(g, "moe", t, 2, 1, {},
                        [](Graph &gg, OpId s) {
                            return gg.addMatMul("ffn", s, 512, 512);
                        });
    OpId head = g.addMatMul("head", merge, 128, 512);
    g.addOutput("out", head);
    return parseModel(g);
}

TEST(Scheduler, AllocationCoversAllTilesOnce)
{
    const auto bundle = models::buildSkipNet(64);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const Schedule s = sched.build({}, {}, nullptr);
    ASSERT_EQ(s.segments.size(), 1u);

    std::set<TileId> used;
    int total = 0;
    for (const StageAssign &st : s.segments[0]->stages) {
        total += st.baseTiles;
        for (int i = 0; i < st.baseTiles; ++i)
            used.insert(st.tiles[static_cast<std::size_t>(i)]);
        EXPECT_GE(st.baseTiles, 1);
    }
    EXPECT_EQ(total, hw().tiles());
    EXPECT_EQ(used.size(), static_cast<std::size_t>(hw().tiles()));
}

TEST(Scheduler, FrequencyWeightedAllocationFollowsExpectations)
{
    // Two identical matmuls; one expects 4x the rows of the other.
    Graph g("two");
    OpId in = g.addInput("in", LoopDims::matmul(128, 512, 512));
    OpId sw = addEarlyExit(g, "gate", in, 2, 0.5, 0);
    OpId a = buildBranch(g, sw, 1, [](Graph &gg, OpId s) {
        return gg.addMatMul("a", s, 512, 512);
    });
    OpId b2 = g.addMatMul("b", a, 512, 512);
    g.addOutput("out", b2);
    const DynGraph dg = parseModel(g);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});

    OpId aId = kInvalidOp;
    for (const auto &n : dg.graph().nodes())
        if (n.name == "a")
            aId = n.id;
    // 'a' and 'b' see the same dynamic rows; bias 'a' low.
    std::map<OpId, double> exps{{aId, 16.0}};
    const Schedule s = sched.build(exps, {}, nullptr);
    int ta = 0, tb = 0;
    for (const StageAssign &st : s.segments[0]->stages) {
        if (dg.graph().node(st.op).name == "a")
            ta = st.baseTiles;
        if (dg.graph().node(st.op).name == "b")
            tb = st.baseTiles;
    }
    EXPECT_GT(tb, 3 * ta);
}

TEST(Scheduler, WorstCaseIgnoresExpectations)
{
    const auto bundle = models::buildSkipNet(64);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    SchedulerConfig cfg;
    cfg.worstCase = true;
    Scheduler sched(dg, hw(), mapper, cfg);
    // Absurd expectations must have no effect.
    std::map<OpId, double> exps;
    for (OpId op : dg.dynamicOps())
        exps[op] = 1.0;
    const Schedule a = sched.build({}, {}, nullptr);
    const Schedule b = sched.build(exps, {}, nullptr);
    for (std::size_t i = 0; i < a.segments[0]->stages.size(); ++i)
        EXPECT_EQ(a.segments[0]->stages[i].baseTiles,
                  b.segments[0]->stages[i].baseTiles);
    // Worst case keeps exactly one kernel per operator.
    for (const StageAssign &st : a.segments[0]->stages)
        for (const auto &[tiles, store] : st.stores)
            EXPECT_EQ(store->size(), 1u);
}

TEST(Scheduler, PabeeSplitsIntoMultipleSegments)
{
    // BERT-base weights (~210 MB) exceed the 36 MB segment budget.
    const auto bundle = models::buildPabee(32);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const Schedule s = sched.build({}, {}, nullptr);
    EXPECT_GE(s.segments.size(), 3u);
    // Every stage op appears in exactly one segment.
    std::set<OpId> seen;
    for (const auto &seg : s.segments)
        for (const StageAssign &st : seg->stages) {
            EXPECT_FALSE(seen.count(st.op));
            seen.insert(st.op);
        }
}

TEST(Scheduler, SwitchRegionsStayWithinOneSegment)
{
    const auto bundle = models::buildTutelMoe(32);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const Schedule s = sched.build({}, {}, nullptr);
    for (const SwitchInfo &sw : dg.switches()) {
        if (sw.mergeOp == kInvalidOp)
            continue;
        // All branch stages of one switch share a segment index.
        int seg = -2;
        for (const auto &branch : sw.branches) {
            for (OpId op : branch) {
                for (std::size_t i = 0; i < s.segments.size(); ++i) {
                    if (s.segments[i]->stageOf(op) >= 0) {
                        if (seg == -2)
                            seg = static_cast<int>(i);
                        EXPECT_EQ(seg, static_cast<int>(i));
                    }
                }
            }
        }
    }
}

TEST(Scheduler, KernelStoresRespectBudgetAndCoverMax)
{
    const auto bundle = models::buildSkipNet(128);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    SchedulerConfig cfg;
    cfg.kernelBudgetPerOp = 8;
    Scheduler sched(dg, hw(), mapper, cfg);
    const Schedule s =
        sched.build({}, sched.initialKernelValues(), nullptr);
    for (const StageAssign &st : s.segments[0]->stages) {
        for (const auto &[tiles, store] : st.stores) {
            EXPECT_LE(store->size(), 10u);
            if (dg.isDynamic(st.op)) {
                EXPECT_EQ(store->values().back(),
                          dg.graph().node(st.op).dims.n());
            }
        }
    }
}

TEST(Scheduler, TileSharingPairsComplementaryBranches)
{
    const DynGraph dg = pairableModel(128);
    costmodel::Mapper mapper(hw().tech);
    SchedulerConfig cfg;
    cfg.tileSharing = true;
    Scheduler sched(dg, hw(), mapper, cfg);

    // Anti-correlated expert loads in the profile.
    arch::Profiler prof;
    OpId sw = dg.switches()[0].switchOp;
    for (int i = 0; i < 32; ++i)
        prof.recordBranchLoads(
            sw, i % 2 == 0 ? std::vector<std::int64_t>{100, 28}
                           : std::vector<std::int64_t>{28, 100});

    const Schedule s = sched.build({}, {}, &prof);
    ASSERT_EQ(s.segments.size(), 1u);
    ASSERT_EQ(s.segments[0]->pairs.size(), 1u);
    const SharePair &pair = s.segments[0]->pairs[0];
    const StageAssign &sa =
        s.segments[0]->stages[static_cast<std::size_t>(pair.stageA)];
    const StageAssign &sb =
        s.segments[0]->stages[static_cast<std::size_t>(pair.stageB)];
    // Both sides share the same union tile range.
    EXPECT_EQ(sa.tiles, sb.tiles);
    EXPECT_TRUE(sa.shareFirst);
    EXPECT_FALSE(sb.shareFirst);
    // Three allocation ratios, all summing to the union size.
    const int total = pair.alloc[0].first + pair.alloc[0].second;
    for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(pair.alloc[static_cast<std::size_t>(c)].first +
                      pair.alloc[static_cast<std::size_t>(c)].second,
                  total);
        EXPECT_GE(pair.alloc[static_cast<std::size_t>(c)].first, 1);
    }
    // Kernel stores exist for every shared tile count.
    for (int c = 0; c < 3; ++c)
        EXPECT_TRUE(sa.stores.count(
            pair.alloc[static_cast<std::size_t>(c)].first));
}

TEST(Scheduler, SharingDisabledProducesNoPairs)
{
    const DynGraph dg = pairableModel(128);
    costmodel::Mapper mapper(hw().tech);
    SchedulerConfig cfg;
    cfg.tileSharing = false;
    Scheduler sched(dg, hw(), mapper, cfg);
    arch::Profiler prof;
    OpId sw = dg.switches()[0].switchOp;
    for (int i = 0; i < 32; ++i)
        prof.recordBranchLoads(sw, {100, 28});
    const Schedule s = sched.build({}, {}, &prof);
    EXPECT_TRUE(s.segments[0]->pairs.empty());
}

TEST(Scheduler, BranchGroupingMergesRareBranches)
{
    // 4-expert MoE where experts 2 and 3 are almost never active.
    Graph g("rare");
    OpId in = g.addInput("in", LoopDims::matmul(128, 256, 256));
    OpId t = g.addMatMul("proj", in, 256, 256);
    OpId merge = addMoE(g, "moe", t, 4, 1, {},
                        [](Graph &gg, OpId s) {
                            return gg.addMatMul("ffn", s, 256, 256);
                        });
    g.addOutput("out", merge);
    const DynGraph dg = parseModel(g);
    costmodel::Mapper mapper(hw().tech);
    SchedulerConfig cfg;
    cfg.branchGrouping = true;
    cfg.tileSharing = false;
    Scheduler sched(dg, hw(), mapper, cfg);

    arch::Profiler prof;
    OpId sw = dg.switches()[0].switchOp;
    for (int i = 0; i < 32; ++i)
        prof.recordBranchLoads(
            sw, {80, 48, i % 16 == 0 ? 1 : 0, 0});

    const Schedule s = sched.build({}, {}, &prof);
    // The two rare experts' stages share one tile range.
    std::vector<const StageAssign *> rare;
    for (const StageAssign &st : s.segments[0]->stages) {
        const auto &name = dg.graph().node(st.op).name;
        if (name == "moe.ffn") // expert names collide; find by branch
            rare.push_back(&st);
    }
    // Find the stages of branches 2 and 3 via SwitchInfo.
    const SwitchInfo &swi = dg.switches()[0];
    const int s2 = s.segments[0]->stageOf(swi.branches[2][0]);
    const int s3 = s.segments[0]->stageOf(swi.branches[3][0]);
    ASSERT_GE(s2, 0);
    ASSERT_GE(s3, 0);
    EXPECT_EQ(
        s.segments[0]->stages[static_cast<std::size_t>(s2)].tiles,
        s.segments[0]->stages[static_cast<std::size_t>(s3)].tiles);
}

TEST(Scheduler, InitialKernelValuesUniformAndCapped)
{
    const auto bundle = models::buildDpsNet(128);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    SchedulerConfig cfg;
    Scheduler sched(dg, hw(), mapper, cfg);
    const auto values = sched.initialKernelValues();
    EXPECT_FALSE(values.empty());
    for (const auto &[op, vals] : values) {
        EXPECT_LE(vals.size(),
                  static_cast<std::size_t>(cfg.kernelBudgetPerOp) + 1);
        EXPECT_EQ(vals.back(), dg.maxDyn(op));
    }
}

} // namespace

// ---- delta re-scheduling -------------------------------------------

namespace {

/** Everything a schedule compiles down to, including kernel images. */
std::string
deltaFingerprint(const Schedule &s)
{
    std::ostringstream os;
    for (const auto &seg : s.segments) {
        for (const auto &st : seg->stages) {
            os << st.op << ':' << st.baseTiles << ':';
            for (TileId t : st.tiles)
                os << t << ',';
            for (const auto &[count, store] : st.stores) {
                os << '|' << count;
                for (const auto &k : store->kernels()) {
                    os << '/' << k.value << '#';
                    for (unsigned byte : k.image)
                        os << byte << '.';
                }
            }
            os << ';';
        }
        os << '\n';
    }
    return os.str();
}

} // namespace

TEST(SchedulerDelta, AllOpsChangedMatchesFullBuild)
{
    const auto bundle = models::buildPabee(64);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const auto kv = sched.initialKernelValues();
    const Schedule base = sched.build({}, kv, nullptr);
    ASSERT_GT(base.segments.size(), 1u);

    std::vector<OpId> allOps;
    for (const auto &seg : base.segments)
        for (const auto &st : seg->stages)
            allOps.push_back(st.op);

    DeltaStats stats;
    const Schedule rebuilt =
        sched.buildDelta(base, {}, kv, nullptr, allOps, &stats);
    EXPECT_EQ(stats.segmentsTotal, base.segments.size());
    EXPECT_EQ(stats.segmentsRebuilt, base.segments.size());
    EXPECT_EQ(deltaFingerprint(rebuilt), deltaFingerprint(base));
}

TEST(SchedulerDelta, PureSpliceSharesBaseSegments)
{
    const auto bundle = models::buildPabee(64);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    kernels::KernelStoreCache cache;
    sched.setStoreCache(&cache);
    const auto kv = sched.initialKernelValues();
    const Schedule base = sched.build({}, kv, nullptr);

    const std::uint64_t missesBefore = cache.misses();
    DeltaStats stats;
    const Schedule spliced =
        sched.buildDelta(base, {}, kv, nullptr, {}, &stats);
    EXPECT_EQ(stats.segmentsRebuilt, 0u);
    EXPECT_EQ(stats.segmentsTotal, base.segments.size());
    // A pure splice never recompiles -- no store-cache traffic at
    // all -- and shares the base's segment objects outright.
    EXPECT_EQ(cache.misses(), missesBefore);
    ASSERT_EQ(spliced.segments.size(), base.segments.size());
    for (std::size_t i = 0; i < base.segments.size(); ++i)
        EXPECT_EQ(spliced.segments[i].get(), base.segments[i].get());
}

TEST(SchedulerDelta, SingleChangedOpRebuildsOnlyItsSegment)
{
    const auto bundle = models::buildPabee(64);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const auto kv = sched.initialKernelValues();
    const Schedule base = sched.build({}, kv, nullptr);
    ASSERT_GT(base.segments.size(), 1u);

    // Pick an op from the last segment; only that segment rebuilds,
    // and with unchanged inputs the result is still byte-identical.
    const OpId changed = base.segments.back()->stages.front().op;
    DeltaStats stats;
    const Schedule delta =
        sched.buildDelta(base, {}, kv, nullptr, {changed}, &stats);
    EXPECT_EQ(stats.segmentsRebuilt, 1u);
    EXPECT_EQ(deltaFingerprint(delta), deltaFingerprint(base));
    for (std::size_t i = 0; i + 1 < base.segments.size(); ++i)
        EXPECT_EQ(delta.segments[i].get(), base.segments[i].get());
    EXPECT_NE(delta.segments.back().get(),
              base.segments.back().get());
}

TEST(SchedulerDelta, HealthyTileChangeInvalidatesPartition)
{
    // After a fail-over the partition differs, so buildDelta against
    // the healthy base must rebuild every segment (no stale splice).
    const auto bundle = models::buildPabee(64);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const auto kv = sched.initialKernelValues();
    const Schedule base = sched.build({}, kv, nullptr);

    std::vector<TileId> healthy;
    for (int t = 0; t < hw().tiles() - 12; ++t)
        healthy.push_back(static_cast<TileId>(t));
    sched.setHealthyTiles(healthy);
    DeltaStats stats;
    const Schedule degraded =
        sched.buildDelta(base, {}, kv, nullptr, {}, &stats);
    EXPECT_EQ(stats.segmentsRebuilt, stats.segmentsTotal);
    const Schedule full = sched.build({}, kv, nullptr);
    EXPECT_EQ(deltaFingerprint(degraded), deltaFingerprint(full));
}

TEST(SchedulerDelta, LongSpliceChainKeepsFingerprintAndIdentity)
{
    // The schedule search replays dozens of single-op deltas, each
    // against the previous delta's result. Fingerprints must stay
    // byte-identical to the original base the whole way down the
    // chain, and every untouched segment must keep pointer identity
    // with its immediate predecessor (splice, not copy).
    const auto bundle = models::buildPabee(64);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const auto kv = sched.initialKernelValues();
    const Schedule base = sched.build({}, kv, nullptr);
    ASSERT_GT(base.segments.size(), 1u);

    Schedule cur = base;
    for (int round = 0; round < 24; ++round) {
        const std::size_t si =
            static_cast<std::size_t>(round) % cur.segments.size();
        const OpId changed = cur.segments[si]->stages.front().op;
        DeltaStats stats;
        Schedule next =
            sched.buildDelta(cur, {}, kv, nullptr, {changed}, &stats);
        ASSERT_EQ(stats.segmentsRebuilt, 1u) << "round " << round;
        ASSERT_EQ(deltaFingerprint(next), deltaFingerprint(base))
            << "round " << round;
        ASSERT_EQ(next.segments.size(), cur.segments.size());
        for (std::size_t i = 0; i < cur.segments.size(); ++i) {
            if (i == si)
                EXPECT_NE(next.segments[i].get(),
                          cur.segments[i].get());
            else
                EXPECT_EQ(next.segments[i].get(),
                          cur.segments[i].get())
                    << "round " << round << " segment " << i;
        }
        cur = std::move(next);
    }
}
