/**
 * @file
 * Tests for the run-report serializers: JSON structure, CSV shape,
 * and value fidelity.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report_io.hh"

namespace {

using namespace adyna;
using namespace adyna::core;

RunReport
sample()
{
    RunReport r;
    r.workload = "skipnet";
    r.design = "Adyna (static)";
    r.cycles = 123456;
    r.timeMs = 0.123456;
    r.batchesPerSecond = 1620.5;
    r.peUtilization = 0.55;
    r.hbmUtilization = 0.02;
    r.usefulMacs = 1000;
    r.issuedMacs = 1200;
    r.storedKernels = 42;
    r.segments = 2;
    r.reconfigurations = 4;
    r.energy.pe = 10.0;
    r.energy.sram = 5.0;
    r.energy.hbm = 3.0;
    r.energy.noc = 1.0;
    r.batchEnds = {100, 200, 300};
    return r;
}

TEST(ReportJson, ContainsAllScalarFields)
{
    const std::string j = toJson(sample());
    for (const char *needle :
         {"\"workload\":\"skipnet\"", "\"design\":\"Adyna (static)\"",
          "\"cycles\":123456", "\"pe_utilization\":0.55",
          "\"stored_kernels\":42", "\"reconfigurations\":4",
          "\"total\":19"}) {
        EXPECT_NE(j.find(needle), std::string::npos) << needle;
    }
    // Batch series excluded by default.
    EXPECT_EQ(j.find("batch_ends"), std::string::npos);
}

TEST(ReportJson, BatchSeriesOptIn)
{
    const std::string j = toJson(sample(), /*include_batches=*/true);
    EXPECT_NE(j.find("\"batch_ends\":[100,200,300]"),
              std::string::npos);
}

TEST(ReportJson, ArrayOfReports)
{
    const std::string j = toJson(std::vector<RunReport>{sample(),
                                                        sample()});
    EXPECT_EQ(j.front(), '[');
    EXPECT_EQ(j.back(), ']');
    // Two objects separated by a comma.
    EXPECT_NE(j.find("},{"), std::string::npos);
}

TEST(ReportJson, SearchStatsSeparateAndByteStableWhenOff)
{
    // searchStatsJson is kept out of toJson() so search-off reports
    // stay byte-identical to the pre-search code.
    const RunReport off = sample();
    EXPECT_EQ(toJson(off).find("candidates_tried"),
              std::string::npos);

    RunReport on = sample();
    on.search.candidatesTried = 400;
    on.search.candidatesAccepted = 37;
    on.search.materialized = 4;
    on.search.segmentsRebuilt = 9;
    on.search.segmentsSpliced = 11;
    on.search.budgetSpentCycles = 123456;
    on.search.improved = true;
    EXPECT_EQ(toJson(on), toJson(off));

    const std::string s = searchStatsJson(on);
    EXPECT_NE(s.find("\"candidates_tried\":400"),
              std::string::npos);
    EXPECT_NE(s.find("\"candidates_accepted\":37"),
              std::string::npos);
    EXPECT_NE(s.find("\"materialized\":4"), std::string::npos);
    EXPECT_NE(s.find("\"segments_rebuilt\":9"), std::string::npos);
    EXPECT_NE(s.find("\"segments_spliced\":11"),
              std::string::npos);
    EXPECT_NE(s.find("\"budget_spent_cycles\":123456"),
              std::string::npos);
    EXPECT_NE(s.find("\"improved\":true"), std::string::npos);
}

TEST(ReportCsv, HeaderAndRowsAlign)
{
    const std::string csv = toCsv({sample(), sample()});
    std::istringstream is(csv);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(lines[0]), commas(lines[1]));
    EXPECT_EQ(commas(lines[1]), commas(lines[2]));
    EXPECT_NE(lines[0].find("pe_utilization"), std::string::npos);
    EXPECT_NE(lines[1].find("skipnet"), std::string::npos);
}

} // namespace
