/**
 * @file
 * Unit and property tests for the dynamism trace generator:
 * determinism, conservation laws per routing policy, marginal
 * calibration, difficulty correlation across gates, and drift.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/parser.hh"
#include "graph/transforms.hh"
#include "trace/trace.hh"

namespace {

using namespace adyna;
using namespace adyna::graph;
using namespace adyna::trace;

DynGraph
earlyExitModel(std::int64_t batch, double f0, double f1)
{
    Graph g("ee");
    OpId in = g.addInput("in", LoopDims::matmul(batch, 64, 64));
    OpId l0 = g.addMatMul("l0", in, 64, 64);
    OpId sw0 = addEarlyExit(g, "g0", l0, 2, f0, 0);
    OpId l1 = buildBranch(g, sw0, 1, [](Graph &gg, OpId s) {
        return gg.addMatMul("l1", s, 64, 64);
    });
    OpId sw1 = addEarlyExit(g, "g1", l1, 2, f1, 1);
    OpId l2 = buildBranch(g, sw1, 1, [](Graph &gg, OpId s) {
        return gg.addMatMul("l2", s, 64, 64);
    });
    g.addOutput("out", l2);
    return parseModel(g);
}

DynGraph
skipModel(std::int64_t batch, double skip)
{
    Graph g("skip");
    OpId in = g.addInput("in", LoopDims::conv(batch, 16, 16, 8, 8, 1, 1));
    OpId merge = addLayerSkip(g, "b0", in, skip, 0, [](Graph &gg, OpId s) {
        return gg.addConv("b0.conv", s,
                          LoopDims::conv(64, 16, 16, 8, 8, 3, 3));
    });
    g.addOutput("out", merge);
    return parseModel(g);
}

DynGraph
moeModel(std::int64_t batch, int experts, int topk,
         std::vector<double> bias = {})
{
    Graph g("moe");
    OpId in = g.addInput("in", LoopDims::matmul(batch, 128, 128));
    OpId t = g.addMatMul("proj", in, 128, 128);
    OpId merge = addMoE(g, "moe", t, experts, topk, bias,
                        [](Graph &gg, OpId s) {
                            return gg.addMatMul("ffn", s, 128, 128);
                        });
    g.addOutput("out", merge);
    return parseModel(g);
}

TraceConfig
stationary(std::int64_t batch)
{
    TraceConfig cfg;
    cfg.batchSize = batch;
    cfg.driftStrength = 0.0;
    return cfg;
}

TEST(Trace, DeterministicForSameSeed)
{
    const DynGraph dg = earlyExitModel(64, 0.3, 0.3);
    TraceGenerator a(dg, stationary(64), 99);
    TraceGenerator b(dg, stationary(64), 99);
    for (int i = 0; i < 20; ++i) {
        const BatchRouting ra = a.next();
        const BatchRouting rb = b.next();
        for (const auto &[sw, oc] : ra.outcomes) {
            const auto &ocb = rb.outcomes.at(sw);
            EXPECT_EQ(oc.branchCounts, ocb.branchCounts);
            EXPECT_EQ(oc.activeAfter, ocb.activeAfter);
        }
    }
}

TEST(Trace, EarlyExitConservation)
{
    const DynGraph dg = earlyExitModel(128, 0.3, 0.3);
    TraceGenerator gen(dg, stationary(128), 1);
    for (int i = 0; i < 50; ++i) {
        const BatchRouting r = gen.next();
        ASSERT_EQ(r.outcomes.size(), 2u);
        std::int64_t prevAfter = 128;
        for (const SwitchInfo &sw : dg.switches()) {
            const SwitchOutcome &oc = r.outcomes.at(sw.switchOp);
            // Exits + continues = arrivals; arrivals = upstream after.
            EXPECT_EQ(oc.branchCounts[0] + oc.branchCounts[1],
                      oc.activeBefore);
            EXPECT_EQ(oc.activeBefore, prevAfter);
            EXPECT_EQ(oc.activeAfter, oc.branchCounts[1]);
            prevAfter = oc.activeAfter;
        }
    }
}

TEST(Trace, EarlyExitMarginalCalibrated)
{
    const DynGraph dg = earlyExitModel(128, 0.25, 0.25);
    TraceGenerator gen(dg, stationary(128), 5);
    double exits0 = 0, exits1 = 0;
    const int batches = 400;
    for (int i = 0; i < batches; ++i) {
        const BatchRouting r = gen.next();
        exits0 += static_cast<double>(
            r.outcomes.at(dg.switches()[0].switchOp).branchCounts[0]);
        exits1 += static_cast<double>(
            r.outcomes.at(dg.switches()[1].switchOp).branchCounts[0]);
    }
    // Both gates remove ~25% of the *original* batch.
    EXPECT_NEAR(exits0 / batches / 128.0, 0.25, 0.02);
    EXPECT_NEAR(exits1 / batches / 128.0, 0.25, 0.02);
}

TEST(Trace, LayerSkipConservesBatch)
{
    const DynGraph dg = skipModel(64, 0.4);
    TraceGenerator gen(dg, stationary(64), 2);
    double skipped = 0;
    const int batches = 300;
    for (int i = 0; i < batches; ++i) {
        const BatchRouting r = gen.next();
        const SwitchOutcome &oc =
            r.outcomes.at(dg.switches()[0].switchOp);
        EXPECT_EQ(oc.branchCounts[0] + oc.branchCounts[1], 64);
        EXPECT_EQ(oc.activeAfter, 64);
        skipped += static_cast<double>(oc.branchCounts[0]);
    }
    EXPECT_NEAR(skipped / batches / 64.0, 0.4, 0.03);
}

TEST(Trace, MoETopKCountsSumToKTimesBatch)
{
    const DynGraph dg = moeModel(128, 8, 2);
    TraceGenerator gen(dg, stationary(128), 3);
    for (int i = 0; i < 20; ++i) {
        const BatchRouting r = gen.next();
        const SwitchOutcome &oc =
            r.outcomes.at(dg.switches()[0].switchOp);
        std::int64_t total = 0;
        for (std::int64_t c : oc.branchCounts)
            total += c;
        EXPECT_EQ(total, 2 * 128);
        EXPECT_EQ(oc.activeAfter, 128);
    }
}

TEST(Trace, MoEBiasSkewsExpertLoad)
{
    const DynGraph dg =
        moeModel(128, 4, 1, {8.0, 1.0, 1.0, 1.0});
    TraceGenerator gen(dg, stationary(128), 4);
    std::vector<double> load(4, 0.0);
    for (int i = 0; i < 200; ++i) {
        const BatchRouting r = gen.next();
        const SwitchOutcome &oc =
            r.outcomes.at(dg.switches()[0].switchOp);
        for (int e = 0; e < 4; ++e)
            load[static_cast<std::size_t>(e)] +=
                static_cast<double>(oc.branchCounts[e]);
    }
    EXPECT_GT(load[0], 3.0 * load[1]);
}

TEST(Trace, ChannelBlocksEverySampleKeepsAtLeastOne)
{
    Graph g("fbs");
    OpId in = g.addInput("in", LoopDims::conv(32, 64, 64, 14, 14, 1, 1));
    OpId merge = addChannelPrunedConv(
        g, "cp", in, LoopDims::conv(32, 64, 64, 14, 14, 3, 3), 1, 8,
        0.4, 0);
    g.addOutput("out", merge);
    const DynGraph dg = parseModel(g);

    TraceGenerator gen(dg, stationary(32), 6);
    double totalBlocks = 0;
    const int batches = 200;
    for (int i = 0; i < batches; ++i) {
        const BatchRouting r = gen.next();
        const SwitchOutcome &oc =
            r.outcomes.at(dg.switches()[0].switchOp);
        std::int64_t sum = 0;
        for (std::int64_t c : oc.branchCounts) {
            EXPECT_LE(c, 32);
            sum += c;
        }
        EXPECT_GE(sum, 32);      // at least one block per sample
        EXPECT_LE(sum, 32 * 8);  // at most all blocks
        totalBlocks += static_cast<double>(sum);
        // Zipf popularity: first block must dominate the last.
        EXPECT_GE(oc.branchCounts[0], oc.branchCounts[7]);
    }
    // Mean keep fraction near the configured 0.4.
    EXPECT_NEAR(totalBlocks / batches / 32.0 / 8.0, 0.4, 0.06);
}

TEST(Trace, PatchSelectRowsConserved)
{
    const std::int64_t batch = 16, fold = 64;
    Graph g("dps");
    OpId in =
        g.addInput("in", LoopDims::matmul(batch * fold, 192, 192));
    OpId emb = g.addMatMul("embed", in, 192, 192);
    OpId sw = addPatchSelect(g, "sel", emb, 0.3, 0);
    OpId body = buildBranch(g, sw, 0, [](Graph &gg, OpId s) {
        return gg.addMatMul("blk", s, 192, 192);
    });
    g.addUnfoldMerge("agg", {body}, LoopDims::matmul(batch, 192, 192));
    const DynGraph dg = parseModel(g);

    TraceConfig cfg = stationary(batch);
    TraceGenerator gen(dg, cfg, 8);
    double kept = 0;
    const int batches = 300;
    for (int i = 0; i < batches; ++i) {
        const BatchRouting r = gen.next();
        const SwitchOutcome &oc =
            r.outcomes.at(dg.switches()[0].switchOp);
        EXPECT_EQ(oc.branchCounts[0] + oc.branchCounts[1],
                  batch * fold);
        EXPECT_GE(oc.branchCounts[0], batch); // >= 1 patch per image
        kept += static_cast<double>(oc.branchCounts[0]);
    }
    EXPECT_NEAR(kept / batches / (batch * fold), 0.3, 0.05);
}

TEST(Trace, DynValueMatchesOutcomes)
{
    const DynGraph dg = earlyExitModel(64, 0.3, 0.2);
    TraceGenerator gen(dg, stationary(64), 10);
    const BatchRouting r = gen.next();
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "l1") {
            const auto &oc =
                r.outcomes.at(dg.info(n.id).ownerSwitch);
            EXPECT_EQ(r.dynValue(dg, n.id), oc.branchCounts[1]);
        }
        if (n.name == "l0") {
            EXPECT_EQ(r.dynValue(dg, n.id), 64);
        }
    }
}

TEST(Trace, DifficultyCorrelationAcrossGates)
{
    // With two gates at the same marginal, survivors of gate 0 are
    // harder, so gate 1 exits (as a fraction of its arrivals) should
    // be *lower* than an uncorrelated generator would produce when
    // difficulty noise is small.
    TraceConfig cfg = stationary(256);
    cfg.gateNoise = 0.01;
    const DynGraph dg = earlyExitModel(256, 0.3, 0.1);
    TraceGenerator gen(dg, cfg, 11);
    double arrivals = 0, exits = 0;
    for (int i = 0; i < 200; ++i) {
        const BatchRouting r = gen.next();
        const auto &oc1 = r.outcomes.at(dg.switches()[1].switchOp);
        arrivals += static_cast<double>(oc1.activeBefore);
        exits += static_cast<double>(oc1.branchCounts[0]);
    }
    // Marginal w.r.t. original batch is 0.1; relative to arrivals
    // (~0.7 of batch) it is ~0.143.
    EXPECT_NEAR(exits / arrivals, 0.1 / 0.7, 0.03);
}

TEST(Trace, DriftChangesPhaseMarginals)
{
    TraceConfig cfg;
    cfg.batchSize = 128;
    cfg.driftStrength = 1.0;
    cfg.driftPeriod = 50;
    const DynGraph dg = skipModel(128, 0.4);
    TraceGenerator gen(dg, cfg, 12);

    auto phaseMean = [&](int batches) {
        double sum = 0;
        for (int i = 0; i < batches; ++i) {
            const BatchRouting r = gen.next();
            sum += static_cast<double>(
                r.outcomes.at(dg.switches()[0].switchOp)
                    .branchCounts[0]);
        }
        return sum / batches;
    };
    std::vector<double> means;
    for (int p = 0; p < 6; ++p)
        means.push_back(phaseMean(50));
    double lo = means[0], hi = means[0];
    for (double m : means) {
        lo = std::min(lo, m);
        hi = std::max(hi, m);
    }
    // Phases differ noticeably under full drift.
    EXPECT_GT(hi - lo, 3.0);
}

TEST(Trace, ProfileExpectationsDoNotDisturbMainStream)
{
    const DynGraph dg = earlyExitModel(64, 0.3, 0.2);
    TraceGenerator a(dg, stationary(64), 21);
    TraceGenerator b(dg, stationary(64), 21);
    (void)a.profileExpectations(50);
    const BatchRouting ra = a.next();
    const BatchRouting rb = b.next();
    for (const auto &[sw, oc] : ra.outcomes)
        EXPECT_EQ(oc.branchCounts, rb.outcomes.at(sw).branchCounts);
}

TEST(Trace, ProfileExpectationsMatchLongRunMean)
{
    const DynGraph dg = skipModel(128, 0.35);
    TraceGenerator gen(dg, stationary(128), 22);
    const auto exp = gen.profileExpectations(500);
    // Branch-1 (block) ops should see ~0.65 * 128 samples.
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "b0.conv") {
            ASSERT_TRUE(exp.count(n.id));
            EXPECT_NEAR(exp.at(n.id), 0.65 * 128.0, 4.0);
        }
    }
}

} // namespace
