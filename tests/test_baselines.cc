/**
 * @file
 * Tests for the baseline models: design presets, the analytic GPU
 * model's penalty structure, and the real-time-scheduling sweep
 * construction (Figure 12).
 */

#include <gtest/gtest.h>

#include "baselines/designs.hh"
#include "baselines/gpu.hh"
#include "baselines/realtime.hh"
#include "graph/parser.hh"
#include "models/models.hh"

namespace {

using namespace adyna;
using namespace adyna::baselines;

TEST(Designs, PresetsEncodeTableII)
{
    // F2 fast adjustment: M-tenant and Adyna, not M-tile.
    EXPECT_TRUE(execPolicy(Design::MTenant).perBatchRepartition);
    EXPECT_EQ(runOptions(Design::MTile, 100, 1).reconfigPeriod, 0);
    EXPECT_EQ(runOptions(Design::Adyna, 100, 1).reconfigPeriod, 40);
    // F3 pipelining: M-tile and Adyna, not M-tenant.
    EXPECT_TRUE(execPolicy(Design::MTile).pipelining);
    EXPECT_FALSE(execPolicy(Design::MTenant).pipelining);
    EXPECT_TRUE(execPolicy(Design::MTenant).hostRouting);
    // F4 multi-kernel selection: only M-tile lacks fitting.
    EXPECT_FALSE(execPolicy(Design::MTile).kernelFitting);
    EXPECT_TRUE(execPolicy(Design::Adyna).kernelFitting);
    EXPECT_TRUE(execPolicy(Design::FullKernel).exactKernels);
    // Scheduler sides.
    EXPECT_TRUE(schedulerConfig(Design::MTile).worstCase);
    EXPECT_FALSE(schedulerConfig(Design::AdynaStatic).tileSharing);
    EXPECT_TRUE(schedulerConfig(Design::Adyna).tileSharing);
    EXPECT_EQ(allDesigns().size(), 5u);
    EXPECT_STREQ(designName(Design::AdynaStatic), "Adyna (static)");
}

TEST(Gpu, DeterministicAndPositive)
{
    const auto bundle = models::buildSkipNet(32);
    const auto dg = graph::parseModel(bundle.graph);
    const auto a = runGpu(dg, bundle.traceConfig, GpuParams{}, 10, 3);
    const auto b = runGpu(dg, bundle.traceConfig, GpuParams{}, 10, 3);
    EXPECT_GT(a.timeMs, 0.0);
    EXPECT_DOUBLE_EQ(a.timeMs, b.timeMs);
    EXPECT_EQ(a.design, "GPU");
    EXPECT_EQ(a.batchEnds.size(), 10u);
}

TEST(Gpu, SyncPenaltyScalesWithGateCount)
{
    // Same compute, more switches -> more host-sync time.
    const auto bundle = models::buildSkipNet(32);
    const auto dg = graph::parseModel(bundle.graph);
    GpuParams cheap;
    cheap.hostSyncUs = 0.0;
    GpuParams dear;
    dear.hostSyncUs = 1000.0; // 1 ms per gate
    const auto a = runGpu(dg, bundle.traceConfig, cheap, 5, 3);
    const auto b = runGpu(dg, bundle.traceConfig, dear, 5, 3);
    const double extraMs = b.timeMs - a.timeMs;
    // 8 gates x 5 batches x 1 ms.
    EXPECT_NEAR(extraMs, 40.0, 1.0);
}

TEST(Gpu, DynamicEfficiencyPenalizesDynamicOps)
{
    const auto bundle = models::buildDpsNet(32);
    const auto dg = graph::parseModel(bundle.graph);
    GpuParams fast;
    fast.dynamicEfficiency = fast.computeEfficiency;
    GpuParams slow;
    slow.dynamicEfficiency = 0.05;
    const auto a = runGpu(dg, bundle.traceConfig, fast, 5, 3);
    const auto b = runGpu(dg, bundle.traceConfig, slow, 5, 3);
    EXPECT_GT(b.timeMs, 1.5 * a.timeMs);
}

TEST(Realtime, SweepMatchesClosedForm)
{
    const auto bundle = models::buildSkipNet(32);
    const auto dg = graph::parseModel(bundle.graph);

    core::RunReport adyna;
    adyna.timeMs = 100.0;
    core::RunReport full;
    full.timeMs = 87.0;

    const std::vector<double> lat{0.0, 1e-4, 1e-3};
    const auto sweep =
        sweepRealtimeScheduling(dg, adyna, full, 10, lat);
    ASSERT_EQ(sweep.points.size(), 3u);
    EXPECT_EQ(sweep.schedEvents, dynamicOpsPerBatch(dg) * 10);
    // Zero scheduling latency: pure full-kernel speedup.
    EXPECT_NEAR(sweep.points[0].speedupVsAdyna, 100.0 / 87.0, 1e-9);
    // Monotone decreasing in latency.
    EXPECT_GT(sweep.points[0].speedupVsAdyna,
              sweep.points[1].speedupVsAdyna);
    EXPECT_GT(sweep.points[1].speedupVsAdyna,
              sweep.points[2].speedupVsAdyna);
    // Crossover solves T_opt + N * t = T_Adyna.
    const double expect =
        (100.0 - 87.0) / static_cast<double>(sweep.schedEvents);
    EXPECT_NEAR(sweep.crossoverMs, expect, 1e-12);
    // At the crossover, speedup is exactly 1.
    const auto at = sweepRealtimeScheduling(
        dg, adyna, full, 10, {sweep.crossoverMs});
    EXPECT_NEAR(at.points[0].speedupVsAdyna, 1.0, 1e-9);
}

TEST(Realtime, DynamicOpsPerBatchCountsComputeOnly)
{
    const auto bundle = models::buildSkipNet(32);
    const auto dg = graph::parseModel(bundle.graph);
    const std::int64_t n = dynamicOpsPerBatch(dg);
    // 8 gated blocks x (2 convs + next gate matmul is static? the
    // gate reads the merge: static) => at least 16 dynamic convs.
    EXPECT_GE(n, 16);
    EXPECT_LT(n, static_cast<std::int64_t>(dg.graph().size()));
}

} // namespace
