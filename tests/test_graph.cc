/**
 * @file
 * Unit tests for the graph library: loop dims, operator footprints,
 * graph construction and validation, epilogue fusion, the Figure-5
 * transforms, and dynamism propagation rules of Section IV.
 */

#include <gtest/gtest.h>

#include "graph/dot.hh"
#include "graph/dyngraph.hh"
#include "graph/graph.hh"
#include "graph/parser.hh"
#include "graph/transforms.hh"

namespace {

using namespace adyna;
using namespace adyna::graph;

// ----------------------------------------------------------- LoopDims

TEST(LoopDims, ConvMacs)
{
    const auto d = LoopDims::conv(8, 64, 32, 14, 14, 3, 3);
    EXPECT_EQ(d.macs(), 8LL * 64 * 32 * 14 * 14 * 3 * 3);
}

TEST(LoopDims, MatmulIsDegenerateConv)
{
    const auto d = LoopDims::matmul(128, 768, 768);
    EXPECT_EQ(d.p(), 1);
    EXPECT_EQ(d.r(), 1);
    EXPECT_EQ(d.macs(), 128LL * 768 * 768);
}

TEST(LoopDims, WithReplacesOneExtent)
{
    const auto d = LoopDims::matmul(128, 10, 20).with(Dim::N, 5);
    EXPECT_EQ(d.n(), 5);
    EXPECT_EQ(d.k(), 10);
}

TEST(LoopDims, ValidRejectsNonPositive)
{
    auto d = LoopDims::matmul(1, 1, 1);
    EXPECT_TRUE(d.valid());
    d[Dim::C] = 0;
    EXPECT_FALSE(d.valid());
}

TEST(LoopDims, StrNamesAllDims)
{
    const auto s = LoopDims::conv(1, 2, 3, 4, 5, 6, 7).str();
    EXPECT_EQ(s, "[N1 K2 C3 P4 Q5 R6 S7]");
}

// ------------------------------------------------------------- OpNode

TEST(OpNode, ConvFootprints)
{
    OpNode n;
    n.kind = OpKind::Conv2d;
    n.dims = LoopDims::conv(4, 64, 32, 14, 14, 3, 3);
    n.stride = 1;
    // Input spatial = 16x16 at stride 1 with 3x3 filter.
    EXPECT_EQ(n.inputBytes(), Bytes{4} * 32 * 16 * 16 * 2);
    EXPECT_EQ(n.outputBytes(), Bytes{4} * 64 * 14 * 14 * 2);
    EXPECT_EQ(n.weightBytes(), Bytes{64} * 32 * 3 * 3 * 2);
    EXPECT_EQ(n.macs(), 4LL * 64 * 32 * 14 * 14 * 3 * 3);
}

TEST(OpNode, StridedConvInputFootprint)
{
    OpNode n;
    n.kind = OpKind::Conv2d;
    n.dims = LoopDims::conv(1, 8, 8, 7, 7, 3, 3);
    n.stride = 2;
    // IH = (7-1)*2 + 3 = 15.
    EXPECT_EQ(n.inputBytes(), Bytes{1} * 8 * 15 * 15 * 2);
}

TEST(OpNode, NonComputeHasNoWeightsOrMacs)
{
    OpNode n;
    n.kind = OpKind::Eltwise;
    n.dims = LoopDims::matmul(8, 64, 64);
    EXPECT_EQ(n.weightBytes(), 0u);
    EXPECT_EQ(n.macs(), 0);
}

TEST(OpKindPredicates, Classification)
{
    EXPECT_TRUE(isCompute(OpKind::Conv2d));
    EXPECT_TRUE(isCompute(OpKind::MatMul));
    EXPECT_FALSE(isCompute(OpKind::Act));
    EXPECT_TRUE(isFusable(OpKind::Act));
    EXPECT_TRUE(isFusable(OpKind::Pool));
    EXPECT_FALSE(isFusable(OpKind::Switch));
    EXPECT_TRUE(isRouting(OpKind::Switch));
    EXPECT_TRUE(isRouting(OpKind::Merge));
    EXPECT_TRUE(isRouting(OpKind::Sink));
    EXPECT_FALSE(isRouting(OpKind::MatMul));
}

// -------------------------------------------------------------- Graph

Graph
linearGraph()
{
    Graph g("linear");
    OpId in = g.addInput("in", LoopDims::conv(8, 3, 3, 32, 32, 1, 1));
    OpId c1 = g.addConv("c1", in, LoopDims::conv(8, 16, 3, 32, 32, 3, 3));
    OpId a1 = g.addFusable("relu1", OpKind::Act, {c1},
                           LoopDims::conv(8, 16, 16, 32, 32, 1, 1));
    OpId c2 = g.addConv("c2", a1, LoopDims::conv(8, 32, 16, 32, 32, 3, 3));
    g.addOutput("out", c2);
    return g;
}

TEST(Graph, TopoOrderRespectsEdges)
{
    const Graph g = linearGraph();
    const auto topo = g.topoOrder();
    ASSERT_EQ(topo.size(), g.size());
    std::vector<std::size_t> pos(g.size());
    for (std::size_t i = 0; i < topo.size(); ++i)
        pos[topo[i]] = i;
    for (const OpNode &n : g.nodes())
        for (OpId in : n.inputs)
            EXPECT_LT(pos[in], pos[n.id]);
}

TEST(Graph, SuccessorsInverseOfInputs)
{
    const Graph g = linearGraph();
    const auto succ = g.successors(0);
    ASSERT_EQ(succ.size(), 1u);
    EXPECT_EQ(g.node(succ[0]).name, "c1");
}

TEST(Graph, TotalsAccumulate)
{
    const Graph g = linearGraph();
    EXPECT_GT(g.totalMacs(), 0);
    EXPECT_EQ(g.totalWeightBytes(),
              Bytes{16} * 3 * 3 * 3 * 2 + Bytes{32} * 16 * 3 * 3 * 2);
}

TEST(Graph, ValidatePassesOnWellFormed)
{
    linearGraph().validate();
}

TEST(GraphDeathTest, CycleIsFatal)
{
    Graph g("cyclic");
    OpId in = g.addInput("in", LoopDims::matmul(1, 4, 4));
    OpId a = g.addMatMul("a", in, 4, 4);
    OpId b = g.addMatMul("b", a, 4, 4);
    g.node(a).inputs.push_back(b);
    g.node(a).inputBranch.push_back(-1);
    EXPECT_EXIT(g.validate(), ::testing::ExitedWithCode(1), "cycle");
}

TEST(GraphDeathTest, BadDimsAreFatal)
{
    Graph g("bad");
    OpId in = g.addInput("in", LoopDims::matmul(1, 4, 4));
    OpId a = g.addMatMul("a", in, 4, 4);
    g.node(a).dims[Dim::K] = 0;
    EXPECT_EXIT(g.validate(), ::testing::ExitedWithCode(1),
                "non-positive");
}

// ----------------------------------------------------- parser: fusion

TEST(Parser, FusesLinearEpilogueChain)
{
    const Graph g = linearGraph();
    const DynGraph dg = parseModel(g);
    // relu1 disappears into c1.
    EXPECT_EQ(dg.graph().size(), g.size() - 1);
    bool found = false;
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "c1") {
            found = true;
            EXPECT_EQ(dg.info(n.id).epilogueOps, 1);
        }
        EXPECT_NE(n.name, "relu1");
    }
    EXPECT_TRUE(found);
}

TEST(Parser, FusionCanBeDisabled)
{
    ParseOptions opts;
    opts.fuseEpilogues = false;
    const Graph g = linearGraph();
    const DynGraph dg = parseModel(g, opts);
    EXPECT_EQ(dg.graph().size(), g.size());
}

TEST(Parser, PoolFusionUpdatesOutputDims)
{
    Graph g("pool");
    OpId in = g.addInput("in", LoopDims::conv(8, 3, 3, 32, 32, 1, 1));
    OpId c1 = g.addConv("c1", in, LoopDims::conv(8, 16, 3, 32, 32, 3, 3));
    OpId p1 = g.addFusable("pool", OpKind::Pool, {c1},
                           LoopDims::conv(8, 16, 16, 16, 16, 2, 2), 2);
    g.addOutput("out", p1);
    const DynGraph dg = parseModel(g);
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "c1") {
            // Compute dims unchanged; effective output halved.
            EXPECT_EQ(n.dims.p(), 32);
            EXPECT_EQ(dg.info(n.id).outDims.p(), 16);
        }
    }
}

TEST(Parser, SharedProducerNotFused)
{
    Graph g("shared");
    OpId in = g.addInput("in", LoopDims::matmul(8, 16, 16));
    OpId m = g.addMatMul("m", in, 16, 16);
    // Two consumers of m: the Act cannot be fused.
    OpId a = g.addFusable("act", OpKind::Act, {m},
                          LoopDims::matmul(8, 16, 16));
    OpId m2 = g.addMatMul("m2", m, 16, 16);
    g.addOutput("o1", a);
    g.addOutput("o2", m2);
    const DynGraph dg = parseModel(g);
    EXPECT_EQ(dg.graph().size(), g.size());
}

TEST(Parser, ResidualAddFusedKeepsSecondInput)
{
    Graph g("residual");
    OpId in = g.addInput("in", LoopDims::matmul(8, 16, 16));
    OpId m1 = g.addMatMul("m1", in, 16, 16);
    OpId m2 = g.addMatMul("m2", m1, 16, 16);
    OpId add = g.addFusable("add", OpKind::Eltwise, {m2, m1},
                            LoopDims::matmul(8, 16, 16));
    g.addOutput("out", add);
    const DynGraph dg = parseModel(g);
    // add fuses into m2? m1 has two consumers (m2 and add) so add's
    // producer chain via inputs[0] = m2 (single consumer) fuses.
    bool foundM2 = false;
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "m2") {
            foundM2 = true;
            EXPECT_EQ(dg.info(n.id).epilogueOps, 1);
            // The residual operand m1 must remain an input.
            bool hasM1 = false;
            for (OpId i : n.inputs)
                hasM1 |= dg.graph().node(i).name == "m1";
            EXPECT_TRUE(hasM1);
        }
    }
    EXPECT_TRUE(foundM2);
}

// ------------------------------------------- transforms and dynamism

TEST(Transforms, EarlyExitMarksContinuationDynamic)
{
    Graph g("ee");
    OpId in = g.addInput("in", LoopDims::matmul(128, 64, 64));
    OpId l1 = g.addMatMul("l1", in, 64, 64);
    OpId sw = addEarlyExit(g, "gate0", l1, 2, 0.3, 0);
    OpId l2 = buildBranch(g, sw, 1, [](Graph &gg, OpId s) {
        return gg.addMatMul("l2", s, 64, 64);
    });
    g.addOutput("out", l2);

    const DynGraph dg = parseModel(g);
    ASSERT_EQ(dg.switches().size(), 1u);
    const SwitchInfo &si = dg.switches()[0];
    EXPECT_TRUE(si.hasSink);
    EXPECT_EQ(si.mergeOp, kInvalidOp);

    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "l2") {
            EXPECT_TRUE(dg.isDynamic(n.id));
            EXPECT_EQ(dg.info(n.id).branch, 1);
            EXPECT_EQ(dg.info(n.id).maxDyn, 128);
        }
        if (n.name == "l1") {
            EXPECT_FALSE(dg.isDynamic(n.id));
        }
        if (n.name == "gate0.gate") {
            EXPECT_FALSE(dg.isDynamic(n.id));
        }
    }
}

TEST(Transforms, ChainedEarlyExitsNestOwnership)
{
    Graph g("pabee-ish");
    OpId in = g.addInput("in", LoopDims::matmul(64, 32, 32));
    OpId cur = g.addMatMul("l0", in, 32, 32);
    OpId sw0 = addEarlyExit(g, "gate0", cur, 2, 0.2, 0);
    OpId l1 = buildBranch(g, sw0, 1, [](Graph &gg, OpId s) {
        return gg.addMatMul("l1", s, 32, 32);
    });
    OpId sw1 = addEarlyExit(g, "gate1", l1, 2, 0.2, 1);
    OpId l2 = buildBranch(g, sw1, 1, [](Graph &gg, OpId s) {
        return gg.addMatMul("l2", s, 32, 32);
    });
    g.addOutput("out", l2);

    const DynGraph dg = parseModel(g);
    EXPECT_EQ(dg.switches().size(), 2u);
    OpId sw0id = dg.switches()[0].switchOp;
    OpId sw1id = dg.switches()[1].switchOp;
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "l1") {
            EXPECT_TRUE(dg.isDynamic(n.id));
            EXPECT_EQ(dg.info(n.id).ownerSwitch, sw0id);
        }
        if (n.name == "l2") {
            EXPECT_TRUE(dg.isDynamic(n.id));
            EXPECT_EQ(dg.info(n.id).ownerSwitch, sw1id);
        }
        // The second gate's classifier reads the dynamic tensor.
        if (n.name == "gate1.gate") {
            EXPECT_TRUE(dg.isDynamic(n.id));
            EXPECT_EQ(dg.info(n.id).ownerSwitch, sw0id);
        }
    }
}

TEST(Transforms, LayerSkipMergeRestoresStaticBatch)
{
    Graph g("skip");
    OpId in = g.addInput("in", LoopDims::conv(32, 16, 16, 8, 8, 1, 1));
    OpId merge =
        addLayerSkip(g, "blk0", in, 0.4, 0, [](Graph &gg, OpId s) {
            return gg.addConv("blk0.conv", s,
                              LoopDims::conv(32, 16, 16, 8, 8, 3, 3));
        });
    OpId tailConv = g.addConv(
        "tail", merge, LoopDims::conv(32, 16, 16, 8, 8, 3, 3));
    g.addOutput("out", tailConv);

    const DynGraph dg = parseModel(g);
    ASSERT_EQ(dg.switches().size(), 1u);
    const SwitchInfo &si = dg.switches()[0];
    EXPECT_FALSE(si.hasSink);
    EXPECT_NE(si.mergeOp, kInvalidOp);
    ASSERT_EQ(si.branches.size(), 2u);
    EXPECT_TRUE(si.branches[0].empty()); // shortcut has no ops
    EXPECT_EQ(si.branches[1].size(), 1u);

    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "blk0.conv") {
            EXPECT_TRUE(dg.isDynamic(n.id));
            EXPECT_EQ(dg.info(n.id).branch, 1);
        }
        // After the merge the full batch is back: static.
        if (n.name == "tail") {
            EXPECT_FALSE(dg.isDynamic(n.id));
        }
    }
}

TEST(Transforms, MoEBranchesAreDynamicMergeStatic)
{
    Graph g("moe");
    OpId in = g.addInput("in", LoopDims::matmul(128, 256, 256));
    OpId tok = g.addMatMul("proj", in, 256, 256);
    OpId merge = addMoE(g, "moe0", tok, 4, 1, {},
                        [](Graph &gg, OpId s) {
                            OpId up = gg.addMatMul("up", s, 512, 256);
                            return gg.addMatMul("down", up, 256, 512);
                        });
    g.addOutput("out", merge);

    const DynGraph dg = parseModel(g);
    ASSERT_EQ(dg.switches().size(), 1u);
    const SwitchInfo &si = dg.switches()[0];
    EXPECT_EQ(si.numBranches(), 4);
    EXPECT_FALSE(si.hasSink);
    for (int b = 0; b < 4; ++b)
        EXPECT_EQ(si.branches[b].size(), 2u);
    EXPECT_FALSE(dg.isDynamic(merge == kInvalidOp ? 0 : si.mergeOp));
}

TEST(Transforms, ChannelPrunedConvSplitsAlongC)
{
    Graph g("fbs");
    OpId in = g.addInput("in", LoopDims::conv(16, 64, 64, 14, 14, 1, 1));
    OpId merge = addChannelPrunedConv(
        g, "cp0", in, LoopDims::conv(16, 128, 64, 14, 14, 3, 3), 1, 4,
        0.5, 0);
    g.addOutput("out", merge);

    const DynGraph dg = parseModel(g);
    ASSERT_EQ(dg.switches().size(), 1u);
    const SwitchInfo &si = dg.switches()[0];
    EXPECT_EQ(si.numBranches(), 4);
    int blockConvs = 0;
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.kind == OpKind::Conv2d && n.name.rfind("cp0.c", 0) == 0) {
            ++blockConvs;
            EXPECT_EQ(n.dims.c(), 16); // 64 / 4
            EXPECT_TRUE(dg.isDynamic(n.id));
        }
    }
    EXPECT_EQ(blockConvs, 4);
}

TEST(Transforms, PatchSelectKeepsDynamicUnfoldRestores)
{
    const std::int64_t folded = 32 * 16; // 32 samples x 16 patches
    Graph g("dps");
    OpId in = g.addInput("in", LoopDims::matmul(folded, 192, 192));
    OpId emb = g.addMatMul("embed", in, 192, 192);
    OpId sw = addPatchSelect(g, "select", emb, 0.25, 0);
    OpId body = buildBranch(g, sw, 0, [&](Graph &gg, OpId s) {
        return gg.addMatMul("vit.block", s, 192, 192);
    });
    OpId agg = g.addUnfoldMerge("aggregate", {body},
                                LoopDims::matmul(32, 192, 192));
    OpId head = g.addMatMul("head", agg, 10, 192);
    g.addOutput("out", head);

    const DynGraph dg = parseModel(g);
    ASSERT_EQ(dg.switches().size(), 1u);
    EXPECT_TRUE(dg.switches()[0].hasSink);
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "vit.block") {
            EXPECT_TRUE(dg.isDynamic(n.id));
            EXPECT_EQ(dg.info(n.id).maxDyn, folded);
        }
        // The unfold merge restores per-sample rows: static again.
        if (n.name == "head") {
            EXPECT_FALSE(dg.isDynamic(n.id));
        }
    }
}

TEST(Transforms, SinkAfterSwitchWithoutMergeGivesPostDynamism)
{
    // Early exit whose continuation runs to the output: everything
    // after the gate is dynamic.
    Graph g("tail-dyn");
    OpId in = g.addInput("in", LoopDims::matmul(64, 32, 32));
    OpId l0 = g.addMatMul("l0", in, 32, 32);
    OpId sw = addEarlyExit(g, "g0", l0, 2, 0.5, 0);
    OpId l1 = buildBranch(g, sw, 1, [](Graph &gg, OpId s) {
        return gg.addMatMul("l1", s, 32, 32);
    });
    OpId l2 = g.addMatMul("l2", l1, 32, 32);
    g.addOutput("out", l2);
    const DynGraph dg = parseModel(g);
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "l2") {
            EXPECT_TRUE(dg.isDynamic(n.id));
        }
    }
}

TEST(ParserDeathTest, SwitchConsumerWithoutBranchIsFatal)
{
    Graph g("bad-switch");
    OpId in = g.addInput("in", LoopDims::matmul(8, 4, 4));
    RoutingPolicy p;
    p.numBranches = 2;
    OpId sw = g.addSwitch("sw", in, p);
    g.addMatMul("consumer", sw, 4, 4); // no branch named
    EXPECT_EXIT(parseModel(g), ::testing::ExitedWithCode(1),
                "without naming a branch");
}

TEST(ParserDeathTest, OpControlledByTwoSwitchesIsFatal)
{
    Graph g("two-switches");
    OpId in = g.addInput("in", LoopDims::matmul(8, 4, 4));
    RoutingPolicy p;
    p.numBranches = 2;
    OpId sw1 = g.addSwitch("sw1", in, p);
    OpId sw2 = g.addSwitch("sw2", in, p);
    OpId bad = g.addMatMul("bad", sw1, 4, 4);
    g.connectBranch(sw1, 0, bad);
    g.connectBranch(sw2, 0, bad);
    g.addOutput("out", bad);
    EXPECT_EXIT(parseModel(g), ::testing::ExitedWithCode(1),
                "two switches");
}

// ------------------------------------------------------ DynGraph misc

TEST(DynGraph, DynamicOpsAndComputeOpsListed)
{
    Graph g("lists");
    OpId in = g.addInput("in", LoopDims::matmul(64, 32, 32));
    OpId l0 = g.addMatMul("l0", in, 32, 32);
    OpId sw = addEarlyExit(g, "g0", l0, 2, 0.5, 0);
    OpId l1 = buildBranch(g, sw, 1, [](Graph &gg, OpId s) {
        return gg.addMatMul("l1", s, 32, 32);
    });
    g.addOutput("out", l1);
    const DynGraph dg = parseModel(g);
    EXPECT_FALSE(dg.dynamicOps().empty());
    // l0, gate, l1 are compute.
    EXPECT_EQ(dg.computeOps().size(), 3u);
}

TEST(DynGraph, ExpectedMacsScalesWithBatch)
{
    Graph g("exp");
    OpId in = g.addInput("in", LoopDims::matmul(100, 32, 32));
    OpId l0 = g.addMatMul("l0", in, 32, 32);
    g.addOutput("out", l0);
    const DynGraph dg = parseModel(g);
    const double full = static_cast<double>(dg.worstCaseMacs());
    OpId l0id = dg.computeOps()[0];
    const double half = dg.expectedMacs({{l0id, 50.0}});
    EXPECT_DOUBLE_EQ(half, full / 2.0);
}

TEST(DynGraph, SummaryMentionsDynOps)
{
    Graph g("sum");
    OpId in = g.addInput("in", LoopDims::matmul(64, 32, 32));
    OpId l0 = g.addMatMul("l0", in, 32, 32);
    OpId sw = addEarlyExit(g, "g0", l0, 2, 0.5, 0);
    OpId l1 = buildBranch(g, sw, 1, [](Graph &gg, OpId s) {
        return gg.addMatMul("l1", s, 32, 32);
    });
    g.addOutput("out", l1);
    const DynGraph dg = parseModel(g);
    const std::string s = dg.summary();
    EXPECT_NE(s.find("dyn(max=64"), std::string::npos);
}

TEST(Dot, ContainsNodesAndBranchLabels)
{
    Graph g("dot");
    OpId in = g.addInput("in", LoopDims::matmul(8, 4, 4));
    OpId l0 = g.addMatMul("l0", in, 4, 4);
    OpId sw = addEarlyExit(g, "g0", l0, 2, 0.5, 0);
    OpId l1 = buildBranch(g, sw, 1, [](Graph &gg, OpId s) {
        return gg.addMatMul("l1", s, 4, 4);
    });
    g.addOutput("out", l1);
    const std::string dot = toDot(g);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("b1"), std::string::npos);

    const DynGraph dg = parseModel(g);
    const std::string ddot = toDot(dg);
    EXPECT_NE(ddot.find("lightgray"), std::string::npos);
}

} // namespace
