/**
 * @file
 * Behaviour-preservation tests for the perf optimizations: the
 * schedule-plan cache (with the precomputed producer index) and the
 * sweep-shared mapper must produce byte-identical run reports to the
 * seed path (legacy per-period planner, private per-run mapper) on
 * every workload and on the non-default execution policies
 * (worst-case execution, pipelining off).
 */

#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "arch/chip.hh"
#include "baselines/designs.hh"
#include "core/report_io.hh"
#include "core/system.hh"
#include "graph/parser.hh"
#include "models/models.hh"

namespace {

using namespace adyna;
using baselines::Design;

/** Serialized report (with per-batch series) for one run. The
 * mapper cache counters are not serialized, so this captures exactly
 * the simulation-visible outputs. */
std::string
runReport(const std::string &workload, Design design, int batches,
          bool plan_cache, costmodel::Mapper *shared)
{
    const arch::HwConfig hw;
    const auto bundle = models::buildByName(workload, 64);
    const auto dg = graph::parseModel(bundle.graph);
    trace::TraceConfig cfg = bundle.traceConfig;
    cfg.batchSize = 64;
    auto pol = baselines::execPolicy(design);
    pol.planCache = plan_cache;
    core::System sys(dg, cfg, hw, baselines::schedulerConfig(design),
                     pol, baselines::runOptions(design, batches, 1),
                     baselines::designName(design));
    if (shared)
        sys.setSharedMapper(shared);
    return core::toJson(sys.run(), /*include_batches=*/true);
}

} // namespace

/** Plan cache alone: identical reports on all five workloads, with
 * enough batches to cross a reconfiguration boundary (the cache must
 * key on schedule content, not just the period index). */
TEST(Equivalence, PlanCacheMatchesLegacyPlannerAllWorkloads)
{
    for (const auto &name : models::workloadNames()) {
        const auto legacy = runReport(name, Design::Adyna, 45,
                                      /*plan_cache=*/false, nullptr);
        const auto cached = runReport(name, Design::Adyna, 45,
                                      /*plan_cache=*/true, nullptr);
        EXPECT_EQ(legacy, cached) << "workload " << name;
    }
}

/** Shared mapper alone: the memo only caches deterministic search
 * results, so sharing across runs must not change any report. */
TEST(Equivalence, SharedMapperMatchesPrivateMapper)
{
    const arch::HwConfig hw;
    costmodel::Mapper shared(hw.tech);
    for (const auto &name : models::workloadNames()) {
        const auto priv = runReport(name, Design::Adyna, 20,
                                    /*plan_cache=*/false, nullptr);
        const auto shr = runReport(name, Design::Adyna, 20,
                                   /*plan_cache=*/false, &shared);
        EXPECT_EQ(priv, shr) << "workload " << name;
    }
    // The second run of each workload hits the warm memo.
    EXPECT_GT(shared.hits(), 0u);
}

/** Both optimizations together, re-using one mapper across designs
 * and workloads the way the bench sweeps do. */
TEST(Equivalence, CachedSweepMatchesSeedPath)
{
    const arch::HwConfig hw;
    costmodel::Mapper shared(hw.tech);
    for (const auto &name : models::workloadNames()) {
        const auto seed = runReport(name, Design::Adyna, 45,
                                    /*plan_cache=*/false, nullptr);
        const auto fast = runReport(name, Design::Adyna, 45,
                                    /*plan_cache=*/true, &shared);
        EXPECT_EQ(seed, fast) << "workload " << name;
    }
}

/** Non-default policies: MTile runs worst-case shapes, MTenant turns
 * pipelining off -- both exercise planSegment branches the Adyna
 * config does not. */
TEST(Equivalence, BaselineDesignPoliciesMatch)
{
    const arch::HwConfig hw;
    costmodel::Mapper shared(hw.tech);
    for (Design d : {Design::MTile, Design::MTenant,
                     Design::FullKernel}) {
        const auto seed = runReport("skipnet", d, 45,
                                    /*plan_cache=*/false, nullptr);
        const auto fast = runReport("skipnet", d, 45,
                                    /*plan_cache=*/true, &shared);
        EXPECT_EQ(seed, fast)
            << "design " << baselines::designName(d);
    }
}

/** Counters surface in the report and reflect real activity. */
TEST(Equivalence, MapperCountersReported)
{
    const arch::HwConfig hw;
    const auto bundle = models::buildByName("skipnet", 64);
    const auto dg = graph::parseModel(bundle.graph);
    trace::TraceConfig cfg = bundle.traceConfig;
    cfg.batchSize = 64;
    core::System sys(dg, cfg, hw,
                     baselines::schedulerConfig(Design::Adyna),
                     baselines::execPolicy(Design::Adyna),
                     baselines::runOptions(Design::Adyna, 10, 1),
                     "Adyna");
    const auto rep = sys.run();
    EXPECT_GT(rep.mapperMisses, 0u);
    // Reconfigurations re-map the same ops, so a multi-period run
    // sees hits even with a fresh private mapper.
    EXPECT_GT(rep.mapperHits + rep.mapperMisses, rep.mapperMisses);
}
