/**
 * @file
 * Behaviour-preservation tests for the perf optimizations: the
 * schedule-plan cache (with the precomputed producer index), the
 * sweep-shared mapper, the kernel-store cache, and the engine's
 * exec-cost memo must all produce byte-identical run reports to the
 * seed path (legacy per-period planner, private per-run mapper,
 * compile-from-scratch stores, unmemoized kernel evaluation) on
 * every workload and on the non-default execution policies
 * (worst-case execution, pipelining off).
 */

#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "arch/chip.hh"
#include "baselines/designs.hh"
#include "core/report_io.hh"
#include "core/system.hh"
#include "graph/parser.hh"
#include "kernels/store_cache.hh"
#include "models/models.hh"

namespace {

using namespace adyna;
using baselines::Design;

/** Which cache layers a run enables. The default is the seed path:
 * everything off, so each test states exactly what it turns on. */
struct RunCfg
{
    bool planCache = false;
    bool storeCache = false;
    bool execMemo = false;
};

/** Serialized report (with per-batch series) for one run. The cache
 * counters are not serialized, so this captures exactly the
 * simulation-visible outputs. @p shared / @p stores, when non-null,
 * share mapper-memo / compiled-store state across runs; passing a
 * test-local store cache also keeps tests independent of the
 * process-global cache. */
std::string
runReport(const std::string &workload, Design design, int batches,
          const RunCfg &cfg, costmodel::Mapper *shared = nullptr,
          kernels::KernelStoreCache *stores = nullptr)
{
    const arch::HwConfig hw;
    const auto bundle = models::buildByName(workload, 64);
    const auto dg = graph::parseModel(bundle.graph);
    trace::TraceConfig tc = bundle.traceConfig;
    tc.batchSize = 64;
    auto scfg = baselines::schedulerConfig(design);
    scfg.storeCache = cfg.storeCache;
    auto pol = baselines::execPolicy(design);
    pol.planCache = cfg.planCache;
    pol.execCostMemo = cfg.execMemo;
    core::System sys(dg, tc, hw, scfg, pol,
                     baselines::runOptions(design, batches, 1),
                     baselines::designName(design));
    if (shared)
        sys.setSharedMapper(shared);
    if (stores)
        sys.setSharedStoreCache(stores);
    return core::toJson(sys.run(), /*include_batches=*/true);
}

} // namespace

/** Plan cache alone: identical reports on all five workloads, with
 * enough batches to cross a reconfiguration boundary (the cache must
 * key on schedule content, not just the period index). */
TEST(Equivalence, PlanCacheMatchesLegacyPlannerAllWorkloads)
{
    for (const auto &name : models::workloadNames()) {
        const auto legacy =
            runReport(name, Design::Adyna, 45, RunCfg{});
        const auto cached = runReport(name, Design::Adyna, 45,
                                      RunCfg{.planCache = true});
        EXPECT_EQ(legacy, cached) << "workload " << name;
    }
}

/** Shared mapper alone: the memo only caches deterministic search
 * results, so sharing across runs must not change any report. */
TEST(Equivalence, SharedMapperMatchesPrivateMapper)
{
    const arch::HwConfig hw;
    costmodel::Mapper shared(hw.tech);
    for (const auto &name : models::workloadNames()) {
        const auto priv =
            runReport(name, Design::Adyna, 20, RunCfg{});
        const auto shr = runReport(name, Design::Adyna, 20, RunCfg{},
                                   &shared);
        EXPECT_EQ(priv, shr) << "workload " << name;
    }
    // The second run of each workload hits the warm memo.
    EXPECT_GT(shared.hits(), 0u);
}

/** Kernel-store cache alone: cold (first run populates the cache)
 * and warm (second run hits it) must both match the
 * compile-from-scratch path on every workload. */
TEST(Equivalence, StoreCacheMatchesScratchCompile)
{
    kernels::KernelStoreCache stores;
    for (const auto &name : models::workloadNames()) {
        const auto seed = runReport(name, Design::Adyna, 20,
                                    RunCfg{});
        const auto cold = runReport(name, Design::Adyna, 20,
                                    RunCfg{.storeCache = true},
                                    nullptr, &stores);
        const auto warm = runReport(name, Design::Adyna, 20,
                                    RunCfg{.storeCache = true},
                                    nullptr, &stores);
        EXPECT_EQ(seed, cold) << "workload " << name;
        EXPECT_EQ(seed, warm) << "workload " << name;
    }
    EXPECT_GT(stores.hits(), 0u);
    EXPECT_GT(stores.misses(), 0u);
}

/** Exec-cost memo alone: memoized kernel evaluation must reproduce
 * the per-batch series exactly on every workload (the memo caches
 * pre-clamp costs, so the per-batch useful-MAC clamp still sees
 * every actual value). */
TEST(Equivalence, ExecMemoMatchesUnmemoized)
{
    for (const auto &name : models::workloadNames()) {
        const auto seed = runReport(name, Design::Adyna, 45,
                                    RunCfg{});
        const auto memo = runReport(name, Design::Adyna, 45,
                                    RunCfg{.execMemo = true});
        EXPECT_EQ(seed, memo) << "workload " << name;
    }
}

/** Every layer together, re-using one mapper and one store cache
 * across runs the way the bench sweeps do. */
TEST(Equivalence, CachedSweepMatchesSeedPath)
{
    const arch::HwConfig hw;
    costmodel::Mapper shared(hw.tech);
    kernels::KernelStoreCache stores;
    const RunCfg all{.planCache = true, .storeCache = true,
                     .execMemo = true};
    for (const auto &name : models::workloadNames()) {
        const auto seed = runReport(name, Design::Adyna, 45,
                                    RunCfg{});
        const auto fast = runReport(name, Design::Adyna, 45, all,
                                    &shared, &stores);
        EXPECT_EQ(seed, fast) << "workload " << name;
    }
}

/** Non-default policies: MTile runs worst-case shapes, MTenant turns
 * pipelining off -- both exercise planSegment branches the Adyna
 * config does not. */
TEST(Equivalence, BaselineDesignPoliciesMatch)
{
    const arch::HwConfig hw;
    costmodel::Mapper shared(hw.tech);
    kernels::KernelStoreCache stores;
    const RunCfg all{.planCache = true, .storeCache = true,
                     .execMemo = true};
    for (Design d : {Design::MTile, Design::MTenant,
                     Design::FullKernel}) {
        const auto seed = runReport("skipnet", d, 45, RunCfg{});
        const auto fast = runReport("skipnet", d, 45, all, &shared,
                                    &stores);
        EXPECT_EQ(seed, fast)
            << "design " << baselines::designName(d);
    }
}

/** Counters surface in the report and reflect real activity. */
TEST(Equivalence, CacheCountersReported)
{
    const arch::HwConfig hw;
    const auto bundle = models::buildByName("skipnet", 64);
    const auto dg = graph::parseModel(bundle.graph);
    trace::TraceConfig tc = bundle.traceConfig;
    tc.batchSize = 64;
    kernels::KernelStoreCache stores;
    core::System sys(dg, tc, hw,
                     baselines::schedulerConfig(Design::Adyna),
                     baselines::execPolicy(Design::Adyna),
                     baselines::runOptions(Design::Adyna, 10, 1),
                     "Adyna");
    sys.setSharedStoreCache(&stores);
    const auto rep = sys.run();
    EXPECT_GT(rep.mapperMisses, 0u);
    // Reconfigurations re-map the same ops, so a multi-period run
    // sees hits even with a fresh private mapper.
    EXPECT_GT(rep.mapperHits + rep.mapperMisses, rep.mapperMisses);
    // The default config compiles stores through the cache and the
    // exec memo is on; both see activity, and a reconfiguring run
    // re-uses stores of ops whose allocation did not change.
    EXPECT_GT(rep.storeMisses, 0u);
    EXPECT_GT(rep.execHits, 0u);
    EXPECT_GT(rep.execMisses, 0u);
    // Counters stay out of the byte-stable report serialization and
    // travel in cacheStatsJson instead.
    const auto json = core::toJson(rep, true);
    EXPECT_EQ(json.find("mapper_hits"), std::string::npos);
    const auto stats = core::cacheStatsJson(rep);
    EXPECT_NE(stats.find("\"store_misses\""), std::string::npos);
    EXPECT_NE(stats.find("\"exec_hits\""), std::string::npos);
}
