/**
 * @file
 * Unit tests for the anytime schedule search (src/search): the
 * cheap-mutate plan tree's apply/revert exactness and incremental
 * cost maintenance, fingerprint identity, materialized-override
 * validity, budget enforcement, the never-worse guarantee, and
 * byte-stable results across thread-pool widths.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "arch/profiler.hh"
#include "baselines/designs.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/sampling.hh"
#include "core/validate.hh"
#include "graph/parser.hh"
#include "kernels/store_cache.hh"
#include "models/models.hh"
#include "search/search.hh"
#include "search/tree.hh"
#include "trace/trace.hh"

namespace {

using namespace adyna;
using namespace adyna::search;

const arch::HwConfig &
hw()
{
    static const arch::HwConfig cfg;
    return cfg;
}

/** One workload wired exactly like the search_sweep bench: profiled
 * expectations, a heuristic base schedule, and a probe drawn from
 * the same trace stream. */
struct SearchFixture
{
    explicit SearchFixture(const std::string &model,
                           std::int64_t batch = 64)
        : bundle(models::buildByName(model, batch)),
          dg(graph::parseModel(bundle.graph)),
          mapper(hw().tech),
          scheduler(
              dg, hw(), mapper,
              baselines::schedulerConfig(baselines::Design::Adyna))
    {
        scheduler.setStoreCache(&storeCache);
        trace::TraceConfig tc = bundle.traceConfig;
        tc.batchSize = batch;
        kernelValues = scheduler.initialKernelValues();
        trace::TraceGenerator gen(dg, tc, 0x9e3779b97f4a7c15ULL);
        for (int b = 0; b < 24; ++b) {
            const trace::BatchRouting routing = gen.next();
            prof.noteBatch();
            for (const auto &[sw, oc] : routing.outcomes)
                prof.recordBranchLoads(sw, oc.branchCounts);
            for (OpId op : dg.dynamicOps())
                prof.recordValue(op, routing.dynValue(dg, op));
        }
        core::refreshScheduleInputs(prof, true, expectations,
                                    kernelValues);
        base = scheduler.build(expectations, kernelValues, &prof);
        for (int b = 0; b < 6; ++b)
            probe.push_back(gen.next());
    }

    models::ModelBundle bundle;
    graph::DynGraph dg;
    costmodel::Mapper mapper;
    kernels::KernelStoreCache storeCache;
    core::Scheduler scheduler;
    arch::Profiler prof;
    std::map<OpId, double> expectations;
    std::map<OpId, std::vector<std::int64_t>> kernelValues;
    core::Schedule base;
    std::vector<trace::BatchRouting> probe;
};

SearchContext
makeContext(const SearchFixture &f)
{
    return SearchContext(f.scheduler, f.dg, hw(), f.expectations,
                         &f.prof);
}

/** A feasible random mutation (retries until apply succeeds). */
Mutation
randomMutation(const SearchContext &ctx, PlanTree &tree,
               Rng &rng, Undo &undo)
{
    for (;;) {
        Mutation m;
        const double r = rng.uniform();
        if (r < 0.3 && ctx.numAtoms() > 1) {
            m.kind = Mutation::kBoundaryToggle;
            m.index = static_cast<int>(
                rng.uniformInt(0, ctx.numAtoms() - 2));
        } else if (r < 0.4 && ctx.numSwitches() > 0) {
            m.kind = Mutation::kRegroup;
            m.index = static_cast<int>(
                rng.uniformInt(0, ctx.numSwitches() - 1));
            m.delta = static_cast<int>(rng.uniformInt(0, 2));
        } else {
            m.kind = Mutation::kTileNudge;
            m.index = static_cast<int>(
                rng.uniformInt(0, ctx.numOps() - 1));
            m.delta = rng.uniform() < 0.5 ? 1 : -1;
        }
        if (tree.apply(m, undo))
            return m;
    }
}

// ------------------------------------------------------------ PlanTree

TEST(PlanTree, ApplyRevertRestoresStateAndCostExactly)
{
    const SearchFixture f("pabee");
    const SearchContext ctx = makeContext(f);
    PlanTree tree(ctx);
    const TreeState before = tree.state();
    const double costBefore = tree.cost();
    const std::uint64_t fpBefore = tree.fingerprint();

    Rng rng(17);
    std::vector<Undo> undos;
    for (int i = 0; i < 200; ++i) {
        Undo u;
        randomMutation(ctx, tree, rng, u);
        undos.push_back(std::move(u));
    }
    // Unwinding the whole stack must restore state, fingerprint and
    // cached cost bit-exactly -- no recomputation drift.
    for (auto it = undos.rbegin(); it != undos.rend(); ++it)
        tree.revert(*it);
    EXPECT_EQ(tree.fingerprint(), fpBefore);
    EXPECT_EQ(tree.cost(), costBefore);
    const TreeState after = tree.state();
    EXPECT_EQ(after.cut, before.cut);
    EXPECT_EQ(after.biasExp, before.biasExp);
    EXPECT_EQ(after.groupMode, before.groupMode);
}

TEST(PlanTree, IncrementalCostMatchesFullRecost)
{
    const SearchFixture f("pabee");
    const SearchContext ctx = makeContext(f);
    PlanTree tree(ctx);
    Rng rng(23);
    for (int i = 0; i < 120; ++i) {
        Undo u;
        randomMutation(ctx, tree, rng, u);
        const double incremental = tree.cost();
        const double full = tree.recostAll();
        EXPECT_NEAR(incremental, full,
                    1e-6 * std::max(1.0, std::abs(full)))
            << "after mutation " << i;
    }
}

TEST(PlanTree, FingerprintIsStateIdentity)
{
    const SearchFixture f("skipnet");
    const SearchContext ctx = makeContext(f);
    PlanTree tree(ctx);
    const TreeState s0 = tree.state();
    EXPECT_EQ(PlanTree::fingerprint(s0), tree.fingerprint());

    Rng rng(5);
    Undo u;
    randomMutation(ctx, tree, rng, u);
    EXPECT_NE(tree.fingerprint(), PlanTree::fingerprint(s0));
    tree.revert(u);
    EXPECT_EQ(tree.fingerprint(), PlanTree::fingerprint(s0));

    // setState on a fresh tree reproduces the same identity.
    PlanTree other(ctx);
    other.setState(s0);
    EXPECT_EQ(other.fingerprint(), PlanTree::fingerprint(s0));
}

TEST(PlanTree, DefaultStateReproducesHeuristicPartition)
{
    const SearchFixture f("pabee");
    const SearchContext ctx = makeContext(f);
    PlanTree tree(ctx);
    const core::PlanOverride ov =
        PlanTree::toOverride(ctx, tree.state());
    ASSERT_EQ(ov.partition.size(), f.base.segments.size());
    for (std::size_t i = 0; i < ov.partition.size(); ++i) {
        std::vector<OpId> segOps;
        for (const auto &st : f.base.segments[i]->stages)
            segOps.push_back(st.op);
        EXPECT_EQ(ov.partition[i], segOps) << "segment " << i;
    }
}

// ------------------------------------------------------ ScheduleSearch

SearchConfig
smallConfig()
{
    SearchConfig scfg;
    scfg.chains = 4;
    scfg.mutationBudget = 400;
    scfg.materializeTop = 4;
    scfg.seed = 7;
    return scfg;
}

TEST(ScheduleSearch, NeverWorseThanHeuristicAndValid)
{
    for (const char *model : {"pabee", "skipnet"}) {
        SearchFixture f(model);
        ScheduleSearch searcher(
            f.dg, hw(), f.mapper,
            baselines::execPolicy(baselines::Design::Adyna),
            smallConfig());
        core::SearchStats stats;
        const auto res = searcher.run(
            f.scheduler, f.base, nullptr, f.expectations,
            f.kernelValues, &f.prof, f.probe, &f.storeCache,
            &stats);
        EXPECT_LE(res.searchedCost, res.heuristicCost) << model;
        EXPECT_EQ(res.improved,
                  res.searchedCost < res.heuristicCost);
        // The winning schedule must be engine-legal either way.
        const auto issues =
            core::validateSchedule(res.schedule, f.dg, hw());
        EXPECT_TRUE(issues.empty())
            << core::issuesToString(issues);
        EXPECT_EQ(stats.candidatesTried, 400u);
        EXPECT_GT(stats.materialized, 0u);
    }
}

TEST(ScheduleSearch, ByteStableAcrossThreadPoolWidths)
{
    auto runWith = [](int jobs, core::SearchStats &stats) {
        SearchFixture f("pabee");
        ScheduleSearch searcher(
            f.dg, hw(), f.mapper,
            baselines::execPolicy(baselines::Design::Adyna),
            smallConfig());
        ThreadPool pool(jobs);
        searcher.setThreadPool(&pool);
        return searcher.run(f.scheduler, f.base, nullptr,
                            f.expectations, f.kernelValues, &f.prof,
                            f.probe, &f.storeCache, &stats);
    };
    core::SearchStats s1, s4;
    const auto a = runWith(1, s1);
    const auto b = runWith(4, s4);
    EXPECT_EQ(a.searchedCost, b.searchedCost);
    EXPECT_EQ(a.heuristicCost, b.heuristicCost);
    EXPECT_EQ(a.improved, b.improved);
    EXPECT_EQ(PlanTree::fingerprint(a.tree),
              PlanTree::fingerprint(b.tree));
    EXPECT_EQ(s1.candidatesTried, s4.candidatesTried);
    EXPECT_EQ(s1.candidatesAccepted, s4.candidatesAccepted);
    EXPECT_EQ(s1.materialized, s4.materialized);
    EXPECT_EQ(s1.budgetSpentCycles, s4.budgetSpentCycles);
}

TEST(ScheduleSearch, RespectsCycleBudget)
{
    SearchFixture f("pabee");
    SearchConfig scfg = smallConfig();
    // Enough for the mutations and the base evaluation but at most
    // a couple of materializations.
    scfg.cycleBudget = scfg.mutationBudget * scfg.mutateCycles +
                       4 * scfg.materializeCycles;
    ScheduleSearch searcher(
        f.dg, hw(), f.mapper,
        baselines::execPolicy(baselines::Design::Adyna), scfg);
    core::SearchStats stats;
    const auto res = searcher.run(
        f.scheduler, f.base, nullptr, f.expectations, f.kernelValues,
        &f.prof, f.probe, &f.storeCache, &stats);
    EXPECT_LE(res.spentCycles, scfg.cycleBudget);
    EXPECT_LE(stats.budgetSpentCycles, scfg.cycleBudget);
    EXPECT_LE(res.searchedCost, res.heuristicCost);
}

TEST(ScheduleSearch, TinyBudgetFallsBackToHeuristic)
{
    SearchFixture f("skipnet");
    SearchConfig scfg = smallConfig();
    scfg.cycleBudget = 1; // can't afford a single mutation
    ScheduleSearch searcher(
        f.dg, hw(), f.mapper,
        baselines::execPolicy(baselines::Design::Adyna), scfg);
    core::SearchStats stats;
    const auto res = searcher.run(
        f.scheduler, f.base, nullptr, f.expectations, f.kernelValues,
        &f.prof, f.probe, &f.storeCache, &stats);
    EXPECT_FALSE(res.improved);
    EXPECT_EQ(res.searchedCost, res.heuristicCost);
    EXPECT_LE(res.spentCycles, scfg.cycleBudget);
    EXPECT_TRUE(stats.budgetExhausted);
}

TEST(ScheduleSearch, RestoresSchedulerOverridePointer)
{
    SearchFixture f("skipnet");
    ScheduleSearch searcher(
        f.dg, hw(), f.mapper,
        baselines::execPolicy(baselines::Design::Adyna),
        smallConfig());
    // The scheduler enters with no override installed; the search
    // must not leave its scratch override behind.
    (void)searcher.run(f.scheduler, f.base, nullptr, f.expectations,
                       f.kernelValues, &f.prof, f.probe,
                       &f.storeCache, nullptr);
    const core::Schedule again =
        f.scheduler.build(f.expectations, f.kernelValues, &f.prof);
    EXPECT_EQ(again.segments.size(), f.base.segments.size());
}

} // namespace
