/**
 * @file
 * Unit tests for the multi-chip pod runtime: Router policy behaviour
 * (least-loaded tie-breaks, round-robin cycling, affinity hit/miss
 * accounting, backpressure divert-then-shed, adaptive vs static
 * fail-over eligibility), Interconnect serialization/latency/FIFO
 * math and per-class byte accounting, the K=1 byte-identity gate
 * against serve::ServeRuntime, multi-chip determinism, chip-loss
 * drain + re-route, heal-time weight re-streaming, and partitioned
 * placement.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/designs.hh"
#include "fault/fault.hh"
#include "graph/parser.hh"
#include "kernels/store_cache.hh"
#include "models/models.hh"
#include "pod/breaker.hh"
#include "pod/interconnect.hh"
#include "pod/router.hh"
#include "pod/runtime.hh"
#include "serve/server.hh"

namespace {

using namespace adyna;
using namespace adyna::pod;

// --------------------------------------------------------- Router

std::vector<ChipStatus>
flatStatus(int chips)
{
    return std::vector<ChipStatus>(static_cast<std::size_t>(chips));
}

TEST(Router, LeastLoadedPicksLightestAndTiesToLowestId)
{
    Router r({}, 3);
    auto st = flatStatus(3);

    // All equal: the lowest id wins the tie.
    EXPECT_EQ(r.route(st, 0.0).chip, 0);

    st[1].load = 5.0;
    st[2].load = 2.0;
    st[0].load = 9.0;
    EXPECT_EQ(r.route(st, 0.0).chip, 2);

    st[1].load = 2.0; // tie between 1 and 2 -> lowest id
    EXPECT_EQ(r.route(st, 0.0).chip, 1);
}

TEST(Router, RoundRobinCyclesEligibleChips)
{
    RouterConfig rc;
    rc.policy = RoutePolicy::RoundRobin;
    Router r(rc, 3);
    const auto st = flatStatus(3);
    std::vector<int> picks;
    for (int i = 0; i < 6; ++i)
        picks.push_back(r.route(st, 0.0).chip);
    EXPECT_EQ(picks, (std::vector<int>{0, 1, 2, 0, 1, 2}));

    // A dark chip drops out of the rotation under adaptive routing.
    auto dark = st;
    dark[1].alive = false;
    picks.clear();
    for (int i = 0; i < 4; ++i)
        picks.push_back(r.route(dark, 0.0).chip);
    EXPECT_EQ(picks, (std::vector<int>{0, 2, 0, 2}));
}

TEST(Router, BackpressureDivertsThenSheds)
{
    RouterConfig rc;
    rc.queueLimit = 2;
    Router r(rc, 2);
    auto st = flatStatus(2);
    st[0].load = 0.0;
    st[1].load = 10.0;

    // Chip 0 is the policy's first choice but is full: divert to 1.
    st[0].queued = 2;
    const RouteDecision d = r.route(st, 0.0);
    EXPECT_EQ(d.chip, 1);
    EXPECT_TRUE(d.diverted);
    EXPECT_EQ(r.diverted(), 1u);
    EXPECT_EQ(r.shed(), 0u);

    // Every chip full: shed at the front door.
    st[1].queued = 2;
    const RouteDecision s = r.route(st, 0.0);
    EXPECT_EQ(s.chip, RouteDecision::kShed);
    EXPECT_FALSE(s.diverted);
    EXPECT_EQ(r.diverted(), 1u);
    EXPECT_EQ(r.shed(), 1u);
}

TEST(Router, AffinityPicksNearestSignatureAndCountsHits)
{
    RouterConfig rc;
    rc.policy = RoutePolicy::Affinity;
    rc.queueLimit = 4;
    Router r(rc, 2);
    auto st = flatStatus(2);
    st[0].installedLoadMean = 10.0;
    st[1].installedLoadMean = 20.0;

    const RouteDecision hi = r.route(st, 19.0);
    EXPECT_EQ(hi.chip, 1);
    EXPECT_TRUE(hi.affinityHit);
    const RouteDecision lo = r.route(st, 11.0);
    EXPECT_EQ(lo.chip, 0);
    EXPECT_TRUE(lo.affinityHit);
    EXPECT_EQ(r.affinityHits(), 2u);
    EXPECT_EQ(r.affinityMisses(), 0u);

    // Equidistant signature: ties break to the lower load, then id.
    st[0].load = 3.0;
    EXPECT_EQ(r.route(st, 15.0).chip, 1);
    st[1].load = 3.0;
    EXPECT_EQ(r.route(st, 15.0).chip, 0);

    // Backpressure off the nearest chip is an affinity miss.
    st[1].queued = 4;
    const RouteDecision miss = r.route(st, 19.0);
    EXPECT_EQ(miss.chip, 0);
    EXPECT_TRUE(miss.diverted);
    EXPECT_FALSE(miss.affinityHit);
    EXPECT_EQ(r.affinityMisses(), 1u);
}

TEST(Router, AdaptiveSkipsDarkChipsStaticDoesNot)
{
    auto st = flatStatus(2);
    st[0].alive = false;

    Router adaptive({}, 2);
    EXPECT_EQ(adaptive.route(st, 0.0).chip, 1);

    RouterConfig pinned;
    pinned.reRouteOnFailure = false;
    Router fixed(pinned, 2);
    // Static pinning ignores health: the dark chip still wins the
    // least-loaded tie and the runtime sheds what lands there.
    EXPECT_EQ(fixed.route(st, 0.0).chip, 0);

    // ...but a chip that doesn't serve the model is never a target,
    // dark or not.
    st[0].servesModel = false;
    EXPECT_EQ(fixed.route(st, 0.0).chip, 1);

    // No eligible chip at all -> shed regardless of queue room.
    st[1].servesModel = false;
    EXPECT_EQ(fixed.route(st, 0.0).chip, RouteDecision::kShed);
    EXPECT_EQ(fixed.shed(), 1u);
}

// --------------------------------------------------- Interconnect

TEST(Interconnect, TransferChargesSerializationAndLatency)
{
    InterconnectConfig ic;
    ic.bytesPerCycle = 48.0;
    ic.latencyCycles = 2000;
    Interconnect fab(ic, 2);

    // ceil(4096 / 48) = 86 cycles of serialization + 2000 latency.
    EXPECT_EQ(fab.transfer(0, true, 1000, 4096,
                           PayloadClass::Request),
              Tick{1000 + 86 + 2000});
    EXPECT_EQ(fab.linkBusyUntil(0, true), Tick{1086});
    EXPECT_EQ(fab.transfers(), 1u);
}

TEST(Interconnect, LinksAreFifoAndIndependent)
{
    InterconnectConfig ic;
    ic.bytesPerCycle = 48.0;
    ic.latencyCycles = 100;
    Interconnect fab(ic, 2);

    // Two back-to-back transfers on chip 0's ingress serialize in
    // issue order: the second starts where the first finished.
    const Tick first = fab.transfer(0, true, 0, 4800,
                                    PayloadClass::Request);
    EXPECT_EQ(first, Tick{100 + 100});
    const Tick second = fab.transfer(0, true, 0, 4800,
                                     PayloadClass::Request);
    EXPECT_EQ(second, Tick{200 + 100});

    // Chip 0's egress and chip 1's links are untouched.
    EXPECT_EQ(fab.linkBusyUntil(0, false), Tick{0});
    EXPECT_EQ(fab.linkBusyUntil(1, true), Tick{0});
    EXPECT_EQ(fab.transfer(1, true, 0, 4800, PayloadClass::Request),
              Tick{100 + 100});
}

TEST(Interconnect, CountsBytesPerClass)
{
    Interconnect fab({}, 1);
    fab.transfer(0, true, 0, 4096, PayloadClass::Request);
    fab.transfer(0, false, 0, 2048, PayloadClass::Response);
    fab.transfer(0, true, 0, 1 << 20, PayloadClass::Weights);
    EXPECT_EQ(fab.requestBytes(), Bytes{4096});
    EXPECT_EQ(fab.responseBytes(), Bytes{2048});
    EXPECT_EQ(fab.weightBytes(), Bytes{1 << 20});
    EXPECT_EQ(fab.transfers(), 3u);
}

// -------------------------------------------------- CircuitBreaker

/** Calibrate a breaker with @p n healthy pings of @p service. */
void
calibrate(CircuitBreaker &brk, int n, double service, Tick &now)
{
    for (int i = 0; i < n; ++i)
        brk.recordPing(now += 1000, service, true);
}

TEST(Breaker, ClosedToOpenToHalfOpenToClosed)
{
    BreakerConfig cfg;
    cfg.latencyTripFactor = 3.0;
    cfg.calibrationPings = 3;
    cfg.ewmaAlpha = 0.4;
    cfg.openCycles = 10'000;
    cfg.halfOpenSuccesses = 2;
    CircuitBreaker brk(cfg);
    Tick now = 0;

    // Healthy calibration: baseline 500, breaker stays closed.
    calibrate(brk, 3, 500.0, now);
    EXPECT_EQ(brk.state(), BreakerState::Closed);
    EXPECT_DOUBLE_EQ(brk.baseline(), 500.0);
    EXPECT_TRUE(brk.admits(now));

    // A straggler dilates the ping service 6x: the EWMA crosses
    // 3x baseline within a few pings and the breaker trips.
    while (brk.state() == BreakerState::Closed)
        brk.recordPing(now += 1000, 3000.0, true);
    EXPECT_EQ(brk.state(), BreakerState::Open);
    EXPECT_EQ(brk.trips(), 1u);
    EXPECT_FALSE(brk.admits(now));

    // Open drains for openCycles, then the next query is probation.
    EXPECT_FALSE(brk.admits(now + cfg.openCycles - 1));
    EXPECT_TRUE(brk.admits(now + cfg.openCycles));
    EXPECT_EQ(brk.state(), BreakerState::HalfOpen);

    // Two healthy probes re-close (instantaneous samples, not the
    // still-poisoned EWMA).
    now += cfg.openCycles;
    brk.recordPing(now += 1000, 500.0, true);
    EXPECT_EQ(brk.state(), BreakerState::HalfOpen);
    brk.recordPing(now += 1000, 500.0, true);
    EXPECT_EQ(brk.state(), BreakerState::Closed);
    EXPECT_EQ(brk.closes(), 1u);
    EXPECT_TRUE(brk.admits(now));
}

TEST(Breaker, HalfOpenFailureReopens)
{
    BreakerConfig cfg;
    cfg.calibrationPings = 1;
    cfg.errorTrip = 2;
    cfg.openCycles = 10'000;
    CircuitBreaker brk(cfg);
    Tick now = 0;
    calibrate(brk, 1, 500.0, now);

    // Two consecutive lost probes trip the error counter.
    brk.recordPing(now += 1000, 0.0, false);
    EXPECT_EQ(brk.state(), BreakerState::Closed);
    brk.recordPing(now += 1000, 0.0, false);
    EXPECT_EQ(brk.state(), BreakerState::Open);
    EXPECT_EQ(brk.trips(), 1u);

    // Probation fails on a still-slow probe: straight back to Open,
    // counted as a reopen, and the cooldown restarts.
    now += cfg.openCycles;
    brk.recordPing(now, 5000.0, true);
    EXPECT_EQ(brk.state(), BreakerState::Open);
    EXPECT_EQ(brk.reopens(), 1u);
    EXPECT_FALSE(brk.admits(now + cfg.openCycles - 1));

    // A lost probe during probation also re-opens.
    now += cfg.openCycles;
    EXPECT_TRUE(brk.admits(now));
    brk.recordPing(now, 0.0, false);
    EXPECT_EQ(brk.state(), BreakerState::Open);
    EXPECT_EQ(brk.reopens(), 2u);
}

TEST(Breaker, SdcDetectionsTripAndResetOnClose)
{
    BreakerConfig cfg;
    cfg.calibrationPings = 1;
    cfg.sdcTrip = 3;
    cfg.openCycles = 10'000;
    cfg.halfOpenSuccesses = 1;
    CircuitBreaker brk(cfg);
    Tick now = 0;
    calibrate(brk, 1, 500.0, now);

    brk.recordSdc(now += 100);
    brk.recordSdc(now += 100);
    EXPECT_EQ(brk.state(), BreakerState::Closed);
    brk.recordSdc(now += 100);
    EXPECT_EQ(brk.state(), BreakerState::Open);
    EXPECT_EQ(brk.trips(), 1u);

    // Close via probation; the SDC counter starts over.
    now += cfg.openCycles;
    EXPECT_TRUE(brk.admits(now));
    brk.recordPing(now += 100, 500.0, true);
    EXPECT_EQ(brk.state(), BreakerState::Closed);
    brk.recordSdc(now += 100);
    brk.recordSdc(now += 100);
    EXPECT_EQ(brk.state(), BreakerState::Closed);
    brk.recordSdc(now += 100);
    EXPECT_EQ(brk.state(), BreakerState::Open);
}

// -------------------------------------- Interconnect gray failures

TEST(Interconnect, ChecksumsDetectAndRetryEveryCorruption)
{
    InterconnectConfig ic;
    ic.bytesPerCycle = 48.0;
    ic.latencyCycles = 100;
    Interconnect fab(ic, 2);
    fab.setSeed(42);
    fab.setChecksums(true);
    fab.setCorruptWindows({{0, ~Tick{0}, 0.5}});

    Tick clean = 0;
    for (int i = 0; i < 200; ++i)
        clean = fab.transfer(0, true, clean, 4800,
                             PayloadClass::Request);
    EXPECT_GT(fab.corruptionsInjected(), 0u);
    EXPECT_EQ(fab.corruptionsDetected(), fab.corruptionsInjected());
    EXPECT_EQ(fab.corruptionsUndetected(), 0u);
    EXPECT_EQ(fab.integrityRetries(), fab.corruptionsDetected());
    EXPECT_EQ(fab.sdcDetected(0), fab.corruptionsDetected());
    EXPECT_EQ(fab.sdcDetected(1), 0u);
    // Every retry re-serializes the payload on the FIFO link.
    EXPECT_EQ(fab.retryBytes(),
              Bytes{4800} * fab.integrityRetries());
    EXPECT_GT(clean,
              Tick{200 * 100} + Tick{200 * 100}); // dilated by retries
}

TEST(Interconnect, WithoutChecksumsCorruptionIsSilent)
{
    Interconnect fab({}, 1);
    fab.setSeed(42);
    fab.setCorruptWindows({{0, ~Tick{0}, 0.5}});
    for (int i = 0; i < 100; ++i)
        fab.transfer(0, true, 0, 4096, PayloadClass::Request);
    EXPECT_GT(fab.corruptionsInjected(), 0u);
    EXPECT_EQ(fab.corruptionsUndetected(), fab.corruptionsInjected());
    EXPECT_EQ(fab.corruptionsDetected(), 0u);
    EXPECT_EQ(fab.retryBytes(), Bytes{0});
    EXPECT_EQ(fab.sdcDetected(0), 0u);
}

TEST(Interconnect, FlakyWindowRetransmitsInsideWindowOnly)
{
    InterconnectConfig ic;
    ic.bytesPerCycle = 48.0;
    ic.latencyCycles = 0;
    Interconnect fab(ic, 2);
    fab.setSeed(7);
    fab.setFlakyWindows(0, {{1000, 2000, 0.5}});

    // Outside the window: no RNG draws, exact clean delivery.
    EXPECT_EQ(fab.transfer(0, true, 0, 4800, PayloadClass::Request),
              Tick{100});
    EXPECT_EQ(fab.linkRetries(), 0u);

    // Inside: ~half the attempts are lost and retransmitted.
    for (int i = 0; i < 100; ++i)
        fab.transfer(0, true, 1000, 48, PayloadClass::Request);
    EXPECT_GT(fab.linkRetries(), 0u);
    EXPECT_EQ(fab.retryBytes(), Bytes{48} * fab.linkRetries());
    // Chip 1's links are clean: exact delivery, no new retries.
    const std::uint64_t before = fab.linkRetries();
    EXPECT_EQ(fab.transfer(1, true, 1500, 4800,
                           PayloadClass::Request),
              Tick{1600});
    EXPECT_EQ(fab.linkRetries(), before);
}

// ----------------------------------------------------- PodRuntime

struct TestWorkload
{
    models::ModelBundle bundle;
    graph::DynGraph dg;
    trace::TraceConfig tc;

    explicit TestWorkload(const char *name, int maxBatch)
        : bundle(models::buildByName(name, maxBatch)),
          dg(graph::parseModel(bundle.graph)), tc(bundle.traceConfig)
    {
        tc.batchSize = maxBatch;
        tc.driftStrength = 0.0;
    }
};

serve::ServeConfig
smokeServeConfig(std::uint64_t seed, unsigned requests)
{
    serve::ServeConfig sc;
    sc.arrival.ratePerSec = 5e5;
    sc.batching.maxBatch = 8;
    sc.batching.maxWaitCycles = 20000;
    sc.slo.deadlineMs = 1.0;
    sc.drift.windowRequests = 64;
    sc.numRequests = requests;
    sc.profileBatches = 8;
    sc.seed = seed;
    return sc;
}

PodReport
runPod(PodConfig pc, std::vector<PodWorkload> wls)
{
    const arch::HwConfig hw;
    PodRuntime rt(std::move(wls), hw,
                  baselines::schedulerConfig(baselines::Design::Adyna),
                  baselines::execPolicy(baselines::Design::Adyna),
                  std::move(pc));
    kernels::KernelStoreCache stores;
    rt.setSharedStoreCache(&stores);
    return rt.run();
}

PodReport
skipnetPod(PodConfig pc)
{
    static TestWorkload w("skipnet", 8);
    return runPod(std::move(pc), {{&w.dg, w.tc, "skipnet", 1.0}});
}

/** chip_fail plan text striking chip 1 about a third of the way
 * through @p requests pod arrivals (1 GHz clock, 5e5 r/s). */
std::string
midRunStrike(unsigned requests, const char *extra = "")
{
    const arch::HwConfig hw;
    const double ticksPerSec = hw.tech.freqGhz * 1e9;
    const auto at = static_cast<Tick>(requests / 3 * ticksPerSec /
                                      smokeServeConfig(0, 1)
                                          .arrival.ratePerSec);
    return "chip_fail@" + std::to_string(at) + ":chip=1" + extra;
}

TEST(PodRuntime, SingleChipPodMatchesServeRuntimeByteForByte)
{
    TestWorkload w("skipnet", 8);
    const arch::HwConfig hw;
    const auto schedCfg =
        baselines::schedulerConfig(baselines::Design::Adyna);
    const auto policy =
        baselines::execPolicy(baselines::Design::Adyna);
    const serve::ServeConfig sc = smokeServeConfig(7, 200);

    serve::ServeRuntime direct(w.dg, w.tc, hw, schedCfg, policy, sc,
                               "skipnet");
    kernels::KernelStoreCache directStores;
    direct.setSharedStoreCache(&directStores);
    const std::string want = serve::toJson(direct.run());

    PodConfig pc;
    pc.chips = 1;
    pc.serve = sc;
    PodRuntime rt({{&w.dg, w.tc, "skipnet", 1.0}}, hw, schedCfg,
                  policy, pc);
    kernels::KernelStoreCache podStores;
    rt.setSharedStoreCache(&podStores);
    const PodReport pr = rt.run();

    ASSERT_EQ(pr.chips.size(), 1u);
    EXPECT_EQ(serve::toJson(pr.chips[0].serve), want);
    EXPECT_EQ(pr.chipCount, 1);
    EXPECT_EQ(pr.requests, pr.chips[0].serve.requests);
    EXPECT_EQ(pr.chips[0].model, "skipnet");
    EXPECT_FALSE(pr.chips[0].dark);
}

TEST(PodRuntime, TwoChipRunIsDeterministic)
{
    PodConfig pc;
    pc.chips = 2;
    pc.serve = smokeServeConfig(11, 200);
    const PodReport a = skipnetPod(pc);
    const PodReport b = skipnetPod(pc);
    EXPECT_EQ(toJson(a), toJson(b));

    ASSERT_EQ(a.chips.size(), 2u);
    EXPECT_EQ(a.chips[0].id, 0);
    EXPECT_EQ(a.chips[1].id, 1);
    EXPECT_EQ(a.policy, "least_loaded");
    EXPECT_EQ(a.placement, "replicated");
    // No faults, no queue limit: every arrival lands and completes.
    EXPECT_EQ(a.requests, 200u);
    EXPECT_EQ(a.shedRequests, 0u);
    EXPECT_EQ(a.darkChipSheds, 0u);
    EXPECT_GT(a.chips[0].routed, 0u);
    EXPECT_GT(a.chips[1].routed, 0u);
    EXPECT_EQ(a.chips[0].routed + a.chips[1].routed, 200u);
    // Every routed request and response crossed the fabric, and both
    // chips streamed their weights in at bring-up.
    EXPECT_GT(a.icRequestBytes, Bytes{0});
    EXPECT_GT(a.icResponseBytes, Bytes{0});
    EXPECT_GT(a.icWeightBytes, Bytes{0});
    EXPECT_GT(a.goodputRps, 0.0);
    EXPECT_GT(a.p99Ms, 0.0);
}

TEST(PodRuntime, ChipFailDrainsAndReRoutesOntoSurvivors)
{
    PodConfig pc;
    pc.chips = 2;
    pc.serve = smokeServeConfig(13, 240);
    pc.faultPlan = fault::parseFaultPlanOrDie(midRunStrike(240));
    const PodReport r = skipnetPod(pc);

    EXPECT_EQ(r.chipFailEvents, 1u);
    EXPECT_EQ(r.chipHeals, 0u);
    ASSERT_EQ(r.chips.size(), 2u);
    EXPECT_FALSE(r.chips[0].dark);
    EXPECT_TRUE(r.chips[1].dark);
    // Adaptive fail-over loses nothing: the dark chip's queue drains
    // onto the survivor and later arrivals steer around it.
    EXPECT_GT(r.drained, 0u);
    EXPECT_EQ(r.rerouted, r.drained);
    EXPECT_EQ(r.chips[0].rerouted, r.rerouted);
    EXPECT_EQ(r.chips[1].drained, r.drained);
    EXPECT_EQ(r.darkChipSheds, 0u);
    EXPECT_EQ(r.requests + r.shedRequests, 240u);
}

TEST(PodRuntime, StaticPinningShedsDarkChipTraffic)
{
    PodConfig pc;
    pc.chips = 2;
    pc.serve = smokeServeConfig(13, 240);
    pc.faultPlan = fault::parseFaultPlanOrDie(midRunStrike(240));
    pc.router.reRouteOnFailure = false;
    const PodReport r = skipnetPod(pc);

    // The router keeps dispatching to the dark chip; everything that
    // lands there (and its drained queue) is lost.
    EXPECT_GT(r.darkChipSheds, 0u);
    EXPECT_EQ(r.rerouted, 0u);
    EXPECT_EQ(r.requests + r.shedRequests + r.darkChipSheds, 240u);

    PodConfig adaptive = pc;
    adaptive.router.reRouteOnFailure = true;
    const PodReport a = skipnetPod(adaptive);
    EXPECT_GT(a.requests, r.requests);
}

TEST(PodRuntime, HealedChipRejoinsWithWeightRestream)
{
    PodConfig pc;
    pc.chips = 2;
    pc.serve = smokeServeConfig(17, 240);
    const PodReport base = skipnetPod(pc);

    PodConfig healed = pc;
    healed.faultPlan = fault::parseFaultPlanOrDie(
        midRunStrike(240, ",heal=100000"));
    const PodReport r = skipnetPod(healed);

    EXPECT_EQ(r.chipFailEvents, 1u);
    EXPECT_EQ(r.chipHeals, 1u);
    ASSERT_EQ(r.chips.size(), 2u);
    EXPECT_FALSE(r.chips[1].dark);
    EXPECT_EQ(r.requests + r.shedRequests, 240u);
    // Rejoining re-streams the chip's weight working set on top of
    // the two bring-up streams the fault-free run pays.
    EXPECT_GT(r.icWeightBytes, base.icWeightBytes);
    EXPECT_EQ(base.icWeightBytes % 2, Bytes{0});
    EXPECT_EQ(r.icWeightBytes, base.icWeightBytes * 3 / 2);
}

TEST(PodRuntime, PartitionedPlacementRoutesByModel)
{
    static TestWorkload wa("skipnet", 8);
    static TestWorkload wb("pabee", 8);
    PodConfig pc;
    pc.chips = 3;
    pc.placement = Placement::Partitioned;
    pc.serve = smokeServeConfig(19, 240);
    const PodReport r =
        runPod(pc, {{&wa.dg, wa.tc, "skipnet", 0.75},
                    {&wb.dg, wb.tc, "pabee", 0.25}});

    EXPECT_EQ(r.placement, "partitioned");
    ASSERT_EQ(r.chips.size(), 3u);
    // Largest-remainder sizing: 0.75 of 3 chips -> 2 for skipnet,
    // the floor of 1 for pabee; groups are contiguous.
    EXPECT_EQ(r.chips[0].model, "skipnet");
    EXPECT_EQ(r.chips[1].model, "skipnet");
    EXPECT_EQ(r.chips[2].model, "pabee");
    for (const ChipResult &c : r.chips) {
        EXPECT_GT(c.routed, 0u);
        EXPECT_GT(c.serve.requests, 0u);
    }
    EXPECT_EQ(r.requests + r.shedRequests, 240u);
}

TEST(PodRuntime, HedgeDedupCompletesExactlyOnce)
{
    PodConfig pc;
    pc.chips = 2;
    pc.serve = smokeServeConfig(11, 240);
    // Fast fabric: the bring-up weight stream clears the ingress
    // links early, so deliveries (and hedge ages) track arrivals.
    pc.interconnect.bytesPerCycle = 4800.0;
    pc.reliability.hedging = true;
    // Fire hedges at 2-10% of the 1 ms deadline: far below the x8
    // straggler's service time, so stuck requests always hedge.
    pc.reliability.hedgeMinDeadlineFraction = 0.02;
    pc.reliability.hedgeMaxDeadlineFraction = 0.1;
    pc.faultPlan = fault::parseFaultPlanOrDie(
        "chip_slow@0:chip=1,factor=8");
    const PodReport r = skipnetPod(pc);

    EXPECT_TRUE(r.reliabilityActive);
    const PodReliabilityStats &s = r.reliability;
    EXPECT_GT(s.hedges, 0u);
    // Exactly-once accounting: every hedge's losing copy is either
    // cancelled (queued / in-flight) or finishes as a discarded
    // duplicate — never both, never neither.
    EXPECT_EQ(s.hedgeCancelled + s.wastedCompletions, s.hedges);
    EXPECT_LE(s.hedgeWins, s.hedges);
    // Each pod arrival completes exactly once despite duplication.
    EXPECT_EQ(r.requests + r.shedRequests, 240u);
    ASSERT_EQ(r.chips.size(), 2u);
    EXPECT_EQ(r.chips[0].hedged + r.chips[1].hedged, s.hedges);

    // Hedged runs replay deterministically, and the reliability
    // aggregate is serialized.
    const PodReport again = skipnetPod(pc);
    EXPECT_EQ(toJson(r), toJson(again));
    EXPECT_NE(toJson(r).find("\"router_stats\""), std::string::npos);
    EXPECT_NE(routerStatsJson(r).find("\"hedges\""),
              std::string::npos);
}

TEST(PodRuntime, BreakerTripsOnStragglerThenRecloses)
{
    PodConfig pc;
    pc.chips = 2;
    pc.serve = smokeServeConfig(13, 240);
    pc.reliability.breaker = true;
    // Fast fabric (see above): probes measure the chip promptly
    // instead of queueing behind the bring-up weight stream.
    pc.interconnect.bytesPerCycle = 4800.0;
    // The smoke horizon is ~500k ticks, so probe and cool down far
    // faster than the serving-scale defaults.
    pc.reliability.probeIntervalCycles = 20'000;
    pc.reliability.breakerCfg.openCycles = 50'000;
    // Slow window [100k, 300k): calibration finishes before it, the
    // EWMA trips inside it, and probation passes after it heals.
    pc.faultPlan = fault::parseFaultPlanOrDie(
        "chip_slow@100000:chip=1,factor=8,heal=200000");
    const PodReport r = skipnetPod(pc);

    EXPECT_TRUE(r.reliabilityActive);
    const PodReliabilityStats &s = r.reliability;
    EXPECT_GT(s.probes, 0u);
    EXPECT_EQ(s.probeFailures, 0u); // slow, never dark
    EXPECT_GE(s.breakerTrips, 1u);
    EXPECT_GE(s.breakerCloses, 1u) << routerStatsJson(r)
                                   << " horizon=" << r.horizonTicks;
    // An open breaker drains organically: nothing is lost to it.
    EXPECT_EQ(r.requests + r.shedRequests, 240u);
    EXPECT_GT(s.icProbeBytes, Bytes{0});
}

TEST(PodRuntime, ChecksumsCatchEveryPodCorruption)
{
    PodConfig pc;
    pc.chips = 2;
    pc.serve = smokeServeConfig(17, 160);
    pc.reliability.checksums = true;
    pc.faultPlan =
        fault::parseFaultPlanOrDie("payload_corrupt@0:prob=0.2");
    const PodReport r = skipnetPod(pc);

    EXPECT_TRUE(r.reliabilityActive);
    const PodReliabilityStats &s = r.reliability;
    EXPECT_GT(s.corruptionsInjected, 0u);
    EXPECT_EQ(s.corruptionsDetected, s.corruptionsInjected);
    EXPECT_EQ(s.corruptionsUndetected, 0u);
    EXPECT_EQ(s.integrityRetries, s.corruptionsDetected);
    EXPECT_GT(s.icRetryBytes, Bytes{0});
    // The SDC counters attribute each detection to a chip.
    ASSERT_EQ(r.chips.size(), 2u);
    EXPECT_EQ(r.chips[0].sdc + r.chips[1].sdc,
              s.corruptionsDetected);
    // Detect-and-retry delivers everything: corruption costs
    // latency, not requests.
    EXPECT_EQ(r.requests + r.shedRequests, 160u);
}

TEST(PodRuntime, DefaultPodReportHasNoReliabilityJson)
{
    PodConfig pc;
    pc.chips = 2;
    pc.serve = smokeServeConfig(19, 120);
    const PodReport r = skipnetPod(pc);

    // All reliability defaults off: the report says so and the JSON
    // keeps the pre-reliability byte layout.
    EXPECT_FALSE(r.reliabilityActive);
    const std::string json = toJson(r);
    EXPECT_EQ(json.find("router_stats"), std::string::npos);
    EXPECT_EQ(json.find("hedged"), std::string::npos);
    EXPECT_EQ(json.find("\"sdc\""), std::string::npos);
}

TEST(PodRuntime, RoundRobinSpreadsArrivalsEvenly)
{
    PodConfig pc;
    pc.chips = 4;
    pc.router.policy = RoutePolicy::RoundRobin;
    pc.serve = smokeServeConfig(23, 240);
    const PodReport r = skipnetPod(pc);

    EXPECT_EQ(r.policy, "round_robin");
    ASSERT_EQ(r.chips.size(), 4u);
    std::uint64_t lo = r.chips[0].routed, hi = r.chips[0].routed;
    for (const ChipResult &c : r.chips) {
        lo = std::min(lo, c.routed);
        hi = std::max(hi, c.routed);
    }
    EXPECT_LE(hi - lo, 1u);
    EXPECT_EQ(r.requests, 240u);
}

} // namespace
