/**
 * @file
 * Tests for the execution engine and the end-to-end System: pipeline
 * overlap, design-policy semantics (worst-case execution, fitting,
 * DRAM round trips, host routing), determinism, and the qualitative
 * relationships the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "arch/chip.hh"
#include "baselines/designs.hh"
#include "common/rng.hh"
#include "core/engine.hh"
#include "core/scheduler.hh"
#include "core/system.hh"
#include "graph/parser.hh"
#include "graph/transforms.hh"
#include "models/models.hh"

namespace {

using namespace adyna;
using namespace adyna::core;
using namespace adyna::graph;

arch::HwConfig
hw()
{
    return arch::HwConfig{};
}

/** Static three-stage pipeline. */
DynGraph
staticPipe(std::int64_t batch)
{
    Graph g("pipe");
    OpId in = g.addInput("in", LoopDims::matmul(batch, 512, 512));
    OpId a = g.addMatMul("a", in, 512, 512);
    OpId b = g.addMatMul("b", a, 512, 512);
    OpId c = g.addMatMul("c", b, 512, 512);
    g.addOutput("out", c);
    return parseModel(g);
}

std::vector<trace::BatchRouting>
routings(const DynGraph &dg, std::int64_t batch, int n,
         std::uint64_t seed = 1)
{
    trace::TraceConfig cfg;
    cfg.batchSize = batch;
    cfg.driftStrength = 0.0;
    trace::TraceGenerator gen(dg, cfg, seed);
    std::vector<trace::BatchRouting> out;
    for (int i = 0; i < n; ++i)
        out.push_back(gen.next());
    return out;
}

TEST(Engine, NocSlicesCoverEveryByte)
{
    // The per-source NoC slices must partition the transfer exactly:
    // no byte dropped to integer division, and balanced to within
    // one byte. (The seed's `bytes / parts` lost the remainder.)
    for (Bytes total : {Bytes{0}, Bytes{1}, Bytes{7}, Bytes{4096},
                        Bytes{100003}}) {
        for (std::size_t parts : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{12}}) {
            Bytes sum = 0, lo = total + 1, hi = 0;
            for (std::size_t i = 0; i < parts; ++i) {
                const Bytes s = nocSliceBytes(total, parts, i);
                sum += s;
                lo = std::min(lo, s);
                hi = std::max(hi, s);
            }
            EXPECT_EQ(sum, total) << total << "/" << parts;
            EXPECT_LE(hi - lo, 1u) << total << "/" << parts;
        }
    }
}

TEST(Engine, NocSlicesPartitionExactlyUnderDetours)
{
    // Same partition invariant with the NoC under link faults: the
    // per-source slices must still cover every byte, and each slice's
    // transfer must account its bytes on the (possibly detoured)
    // route it actually took — detours change hop counts, never the
    // payload split.
    arch::Noc noc{hw()};
    adyna::Rng rng(77);
    const int tiles = hw().tiles();
    for (int f = 0; f < 24; ++f)
        noc.setLinkDown(
            static_cast<TileId>(rng.uniformInt(0, tiles - 1)),
            static_cast<int>(rng.uniformInt(0, 3)), true);
    ASSERT_GT(noc.downLinks(), 0);

    for (Bytes total : {Bytes{4096}, Bytes{100003}}) {
        for (std::size_t parts :
             {std::size_t{3}, std::size_t{7}, std::size_t{12}}) {
            Bytes sum = 0;
            Bytes accounted = 0;
            const Bytes before = noc.byteHopsServed();
            for (std::size_t i = 0; i < parts; ++i) {
                const Bytes s = nocSliceBytes(total, parts, i);
                sum += s;
                const TileId src = static_cast<TileId>(
                    (i * 29) % static_cast<std::size_t>(tiles));
                const TileId dst = static_cast<TileId>(
                    (i * 53 + 40) % static_cast<std::size_t>(tiles));
                const auto t = noc.transfer(0, src, dst, s);
                // Bytes are charged exactly once per hop of the
                // route the fault state actually selected.
                EXPECT_EQ(t.hops,
                          static_cast<int>(noc.route(src, dst).size()));
                EXPECT_EQ(t.byteHops,
                          s * static_cast<Bytes>(t.hops));
                accounted += t.byteHops;
            }
            EXPECT_EQ(sum, total) << total << "/" << parts;
            EXPECT_EQ(noc.byteHopsServed() - before, accounted);
        }
    }
}

TEST(Engine, PipelineOverlapsBatches)
{
    const DynGraph dg = staticPipe(64);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const Schedule s = sched.build({}, {}, nullptr);
    Engine eng(dg, hw(), mapper, ExecPolicy{});
    arch::Chip chip(hw());
    const auto res =
        eng.runPeriod(chip, s, routings(dg, 64, 8), nullptr, 0);
    ASSERT_EQ(res.batchEnds.size(), 8u);
    const Tick latency = res.batchEnds[0];
    const Tick delta = res.batchEnds.back() - res.batchEnds[6];
    // Steady-state spacing far below the single-batch latency.
    EXPECT_LT(delta * 2, latency);
    // Monotone completion.
    for (std::size_t i = 1; i < res.batchEnds.size(); ++i)
        EXPECT_GE(res.batchEnds[i], res.batchEnds[i - 1]);
}

TEST(Engine, BarrierShiftsAllTimes)
{
    const DynGraph dg = staticPipe(64);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const Schedule s = sched.build({}, {}, nullptr);
    Engine a(dg, hw(), mapper, ExecPolicy{});
    Engine b(dg, hw(), mapper, ExecPolicy{});
    arch::Chip chipA(hw()), chipB(hw());
    const auto ra =
        a.runPeriod(chipA, s, routings(dg, 64, 4), nullptr, 0);
    const auto rb =
        b.runPeriod(chipB, s, routings(dg, 64, 4), nullptr, 12345);
    EXPECT_EQ(rb.endTime - ra.endTime, 12345u);
}

TEST(Engine, WorstCaseExecIssuesMoreMacs)
{
    const auto bundle = models::buildSkipNet(64);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    SchedulerConfig wcCfg;
    wcCfg.worstCase = true;
    Scheduler wcSched(dg, hw(), mapper, wcCfg);
    Scheduler dynSched(dg, hw(), mapper, SchedulerConfig{});
    const Schedule wcS = wcSched.build({}, {}, nullptr);
    const Schedule dynS = dynSched.build({}, {}, nullptr);

    ExecPolicy wcPol;
    wcPol.worstCaseExec = true;
    wcPol.kernelFitting = false;
    wcPol.tileSharing = false;
    Engine wcEng(dg, hw(), mapper, wcPol);
    Engine dynEng(dg, hw(), mapper, ExecPolicy{});

    arch::Chip wcChip(hw()), dynChip(hw());
    const auto rts = routings(dg, 64, 6);
    (void)wcEng.runPeriod(wcChip, wcS, rts, nullptr, 0);
    (void)dynEng.runPeriod(dynChip, dynS, rts, nullptr, 0);

    // Worst-case execution issues strictly more MACs for the same
    // useful work (Figure 10's M-tile-has-high-utilization effect).
    EXPECT_GT(wcChip.issuedMacs(), dynChip.issuedMacs());
    EXPECT_EQ(wcChip.usefulMacs(), dynChip.usefulMacs());
    EXPECT_EQ(dynChip.issuedMacs(), dynChip.usefulMacs());
}

TEST(Engine, NoPipeliningMovesTensorsThroughDram)
{
    const DynGraph dg = staticPipe(64);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const Schedule s = sched.build({}, {}, nullptr);

    ExecPolicy noPipe;
    noPipe.pipelining = false;
    noPipe.perBatchRepartition = true;
    noPipe.exactKernels = true;
    Engine a(dg, hw(), mapper, noPipe);
    Engine b(dg, hw(), mapper, ExecPolicy{});
    arch::Chip chipA(hw()), chipB(hw());
    const auto rts = routings(dg, 64, 6);
    (void)a.runPeriod(chipA, s, rts, nullptr, 0);
    (void)b.runPeriod(chipB, s, rts, nullptr, 0);
    // DRAM traffic grows without pipelining (every inter-stage
    // tensor round-trips); the NoC goes quiet.
    EXPECT_GT(chipA.hbm().bytesServed(),
              chipB.hbm().bytesServed() * 3 / 2);
    EXPECT_LT(chipA.noc().byteHopsServed(),
              chipB.noc().byteHopsServed());
}

TEST(Engine, ProfilerReceivesDynValuesAndBranchLoads)
{
    const auto bundle = models::buildSkipNet(64);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const Schedule s = sched.build({}, {}, nullptr);
    Engine eng(dg, hw(), mapper, ExecPolicy{});
    arch::Chip chip(hw());
    arch::Profiler prof;
    const auto rts = routings(dg, 64, 5);
    (void)eng.runPeriod(chip, s, rts, &prof, 0);
    // Every dynamic stage op has a populated frequency table.
    for (OpId op : dg.dynamicOps()) {
        if (!isCompute(dg.graph().node(op).kind))
            continue;
        EXPECT_EQ(prof.table(op).total(), 5u)
            << dg.graph().node(op).name;
    }
    for (const SwitchInfo &sw : dg.switches())
        EXPECT_EQ(prof.branchHistory(sw.switchOp).size(), 5u);
}

// ------------------------------------------------------------- System

TEST(System, DeterministicAcrossRuns)
{
    const auto bundle = models::buildSkipNet(32);
    const DynGraph dg = parseModel(bundle.graph);
    auto mk = [&] {
        return baselines::makeSystem(dg, bundle.traceConfig, hw(),
                                     baselines::Design::Adyna, 30, 9);
    };
    const auto a = mk().run();
    const auto b = mk().run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.batchEnds, b.batchEnds);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(System, ReportsConsistentMetrics)
{
    const auto bundle = models::buildSkipNet(32);
    const DynGraph dg = parseModel(bundle.graph);
    auto sys = baselines::makeSystem(dg, bundle.traceConfig, hw(),
                                     baselines::Design::Adyna, 45, 3);
    const auto rep = sys.run();
    EXPECT_EQ(rep.workload, "skipnet");
    EXPECT_EQ(rep.design, "Adyna");
    EXPECT_EQ(rep.batchEnds.size(), 45u);
    EXPECT_GT(rep.cycles, 0u);
    EXPECT_NEAR(rep.timeMs, rep.cycles / 1e6, 1e-6);
    EXPECT_GT(rep.peUtilization, 0.0);
    EXPECT_LE(rep.peUtilization, 1.0);
    EXPECT_GT(rep.energy.total(), 0.0);
    EXPECT_EQ(rep.reconfigurations, 1); // 45 batches, period 40
    EXPECT_GE(rep.usefulMacs, 1u);
    EXPECT_GE(rep.issuedMacs, rep.usefulMacs);
}

class DesignOrdering : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DesignOrdering, PaperRelationshipsHold)
{
    // The central qualitative claims of Figure 9, checked per
    // workload on a short run: Adyna beats M-tile; Adyna is within a
    // modest gap of the full-kernel upper bound.
    const auto bundle = models::buildByName(GetParam(), 64);
    const DynGraph dg = parseModel(bundle.graph);
    const int batches = 60;
    auto time = [&](baselines::Design d) {
        return baselines::makeSystem(dg, bundle.traceConfig, hw(), d,
                                     batches, 5)
            .run()
            .timeMs;
    };
    const double mtile = time(baselines::Design::MTile);
    const double adyna = time(baselines::Design::Adyna);
    const double full = time(baselines::Design::FullKernel);
    EXPECT_GT(mtile, adyna) << GetParam();
    EXPECT_LE(full, adyna * 1.02) << GetParam();
    EXPECT_GE(full, adyna * 0.75) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Workloads, DesignOrdering,
                         ::testing::Values("pabee", "fbsnet",
                                           "tutel-moe", "dpsnet"),
                         [](const auto &ti) {
                             std::string n = ti.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(System, EnergyBreakdownDominatedByComputeOrMemory)
{
    const auto bundle = models::buildPabee(32);
    const DynGraph dg = parseModel(bundle.graph);
    auto sys = baselines::makeSystem(dg, bundle.traceConfig, hw(),
                                     baselines::Design::Adyna, 20, 3);
    const auto rep = sys.run();
    EXPECT_GT(rep.energy.pe, 0.0);
    EXPECT_GT(rep.energy.hbm, 0.0);
    EXPECT_GT(rep.energy.noc, 0.0);
    // NoC energy is a small fraction of the total.
    EXPECT_LT(rep.energy.noc, 0.2 * rep.energy.total());
}

} // namespace
