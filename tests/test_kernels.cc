/**
 * @file
 * Unit tests for the kernel machinery: the 128-byte template-kernel
 * codec round trip, the kernel store's dispatch rule, multi-pass
 * fallback, and the uniform initial placement.
 */

#include <gtest/gtest.h>

#include "costmodel/mapper.hh"
#include "kernels/codec.hh"
#include "kernels/store.hh"

namespace {

using namespace adyna;
using namespace adyna::costmodel;
using namespace adyna::kernels;
using namespace adyna::graph;

OpNode
matmulOp(std::int64_t n, std::int64_t k, std::int64_t c)
{
    OpNode op;
    op.kind = OpKind::MatMul;
    op.dims = LoopDims::matmul(n, k, c);
    return op;
}

// --------------------------------------------------------------- codec

TEST(Codec, ImageIs128Bytes)
{
    EXPECT_EQ(kKernelBytes, 128u);
    EXPECT_EQ(sizeof(KernelImage), 128u);
}

TEST(Codec, RoundTripPreservesMapping)
{
    TechParams tech;
    Mapper mapper(tech);
    const OpNode op = matmulOp(128, 512, 256);
    const Mapping m = mapper.search(op, 96, 6);
    const KernelImage img = encodeKernel(m, 1, tech);
    const Mapping back = decodeKernel(img);
    EXPECT_EQ(back.compiledDims, m.compiledDims);
    EXPECT_EQ(back.tiles, m.tiles);
    EXPECT_EQ(back.order, m.order);
    EXPECT_EQ(back.splitFactor(Dim::N), m.splitFactor(Dim::N));
    EXPECT_EQ(back.splitFactor(Dim::K), m.splitFactor(Dim::K));
    EXPECT_EQ(back.splitFactor(Dim::P), m.splitFactor(Dim::P));
}

TEST(Codec, RoundTripConvWithStride)
{
    TechParams tech;
    Mapper mapper(tech);
    OpNode op;
    op.kind = OpKind::Conv2d;
    op.dims = LoopDims::conv(32, 128, 64, 28, 28, 3, 3);
    op.stride = 2;
    const Mapping m = mapper.search(op, 32, 4);
    const KernelImage img = encodeKernel(m, op.stride, tech);
    const Mapping back = decodeKernel(img);
    EXPECT_EQ(back.compiledDims, m.compiledDims);
    // Decoded spad block clamps to per-tile extents but must keep
    // the same DRAM trip structure.
    const auto perTile = m.perTileDims();
    for (std::size_t d = 0; d < kNumDims; ++d) {
        const Dim dd = static_cast<Dim>(d);
        const std::int64_t expect =
            std::clamp<std::int64_t>(m.spadBlock[dd], 1, perTile[dd]);
        EXPECT_EQ(back.spadBlock[dd], expect);
    }
}

TEST(Codec, AllCanonicalOrdersRoundTrip)
{
    TechParams tech;
    for (int o = 0; o < kNumLoopOrders; ++o) {
        Mapping m;
        m.compiledDims = LoopDims::matmul(64, 64, 64);
        m.tiles = 2;
        m.splits = {SpatialSplit{Dim::K, 2}};
        m.spadBlock = m.perTileDims();
        m.order = static_cast<LoopOrder>(o);
        const Mapping back = decodeKernel(encodeKernel(m, 1, tech));
        EXPECT_EQ(back.order, m.order);
    }
}

TEST(CodecDeathTest, OversizedExtentIsFatal)
{
    TechParams tech;
    Mapping m;
    m.compiledDims = LoopDims::matmul(100000, 4, 4); // > 16 bit
    m.tiles = 1;
    m.spadBlock = m.compiledDims;
    EXPECT_DEATH((void)encodeKernel(m, 1, tech), "overflow");
}

// --------------------------------------------------------------- store

Kernel
kernelFor(std::int64_t v)
{
    Kernel k;
    k.value = v;
    k.mapping.compiledDims = LoopDims::matmul(v, 64, 64);
    k.mapping.tiles = 1;
    k.mapping.spadBlock = k.mapping.compiledDims;
    return k;
}

TEST(KernelStore, KeepsSortedAndDeduplicates)
{
    KernelStore store;
    store.add(kernelFor(64));
    store.add(kernelFor(16));
    store.add(kernelFor(128));
    store.add(kernelFor(64)); // replace
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.values(),
              (std::vector<std::int64_t>{16, 64, 128}));
    EXPECT_EQ(store.metadataBytes(), Bytes{3} * 128);
}

TEST(KernelStore, DispatchPicksSmallestNoLess)
{
    KernelStore store;
    for (std::int64_t v : {16, 64, 128})
        store.add(kernelFor(v));
    EXPECT_EQ(store.dispatch(10).index, 0u);
    EXPECT_EQ(store.dispatch(16).index, 0u);
    EXPECT_EQ(store.dispatch(17).index, 1u);
    EXPECT_EQ(store.dispatch(128).index, 2u);
    EXPECT_EQ(store.dispatch(64).passes, 1);
}

TEST(KernelStore, DispatchBeyondMaxRunsMultiplePasses)
{
    KernelStore store;
    store.add(kernelFor(50));
    const Dispatch d = store.dispatch(120);
    EXPECT_EQ(d.index, 0u);
    EXPECT_EQ(d.passes, 3);
    EXPECT_EQ(d.perPass, 50);
}

TEST(KernelStore, RemoveByValue)
{
    KernelStore store;
    store.add(kernelFor(16));
    store.add(kernelFor(64));
    EXPECT_TRUE(store.remove(16));
    EXPECT_FALSE(store.remove(16));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.dispatch(1).index, 0u);
}

TEST(KernelStoreDeathTest, DispatchOnEmptyPanics)
{
    KernelStore store;
    EXPECT_DEATH((void)store.dispatch(1), "empty");
}

// ----------------------------------------------------- uniform values

TEST(UniformKernelValues, SpansFullRange)
{
    const auto v = uniformKernelValues(128, 8);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v.front(), 1);
    EXPECT_EQ(v.back(), 128);
    EXPECT_LE(v.size(), 9u);
    for (std::size_t i = 1; i < v.size(); ++i)
        EXPECT_LT(v[i - 1], v[i]);
}

TEST(UniformKernelValues, SmallDomainEnumerates)
{
    const auto v = uniformKernelValues(5, 32);
    EXPECT_EQ(v, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
}

TEST(UniformKernelValues, SingleKernelIsMax)
{
    const auto v = uniformKernelValues(128, 1);
    EXPECT_EQ(v, (std::vector<std::int64_t>{128}));
}

} // namespace
