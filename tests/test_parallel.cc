/**
 * @file
 * ThreadPool contract tests: jobs=1 is strictly sequential in index
 * order, exceptions propagate (deterministically: lowest failing
 * index wins) and leave the pool reusable, nested submission from
 * inside a task degrades to inline execution instead of
 * deadlocking, and parallelMap returns results in input order
 * regardless of worker count.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"

using adyna::ThreadPool;

TEST(Parallel, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1);
}

TEST(Parallel, SerialPoolRunsInIndexOrder)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.parallelFor(64, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Parallel, CoversAllIndicesExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(1000);
    pool.parallelFor(counts.size(),
                     [&](std::size_t i) { counts[i].fetch_add(1); });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, StressSum)
{
    ThreadPool pool(4);
    std::atomic<long long> sum{0};
    const std::size_t n = 100000;
    pool.parallelFor(n, [&](std::size_t i) {
        sum.fetch_add(static_cast<long long>(i),
                      std::memory_order_relaxed);
    });
    const long long expect =
        static_cast<long long>(n) * (static_cast<long long>(n) - 1) /
        2;
    EXPECT_EQ(sum.load(), expect);
}

TEST(Parallel, MapPreservesInputOrder)
{
    ThreadPool pool(4);
    const auto out = pool.parallelMap(257, [](std::size_t i) {
        return static_cast<int>(i) * 3;
    });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(Parallel, ExceptionPropagatesLowestIndex)
{
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        try {
            pool.parallelFor(100, [&](std::size_t i) {
                if (i == 17 || i == 80)
                    throw std::runtime_error(
                        "task " + std::to_string(i));
            });
            FAIL() << "expected a propagated exception";
        } catch (const std::runtime_error &e) {
            // Both 17 and 80 may throw; the pool must surface the
            // lowest index so failures do not depend on thread count.
            EXPECT_STREQ(e.what(), "task 17");
        }
        // The pool stays usable after a failed run.
        std::atomic<int> ran{0};
        pool.parallelFor(10, [&](std::size_t) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 10);
    }
}

TEST(Parallel, ExceptionWithSerialPool)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(5,
                                  [](std::size_t i) {
                                      if (i == 2)
                                          throw std::logic_error("x");
                                  }),
                 std::logic_error);
}

TEST(Parallel, NestedSubmitRunsInline)
{
    ThreadPool pool(4);
    std::atomic<long long> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        // A task that itself calls parallelFor must complete inline
        // on the calling thread rather than deadlock on pool slots.
        pool.parallelFor(50, [&](std::size_t j) {
            total.fetch_add(static_cast<long long>(j),
                            std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(total.load(), 8LL * (50 * 49 / 2));
}

TEST(Parallel, ZeroAndOneTasks)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(Parallel, ManyPoolsConstructDestruct)
{
    for (int i = 0; i < 16; ++i) {
        ThreadPool pool(3);
        std::atomic<int> ran{0};
        pool.parallelFor(7, [&](std::size_t) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 7);
    }
}
