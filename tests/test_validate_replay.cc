/**
 * @file
 * Tests for the schedule validator and the routing-trace
 * record/replay path (save -> load round trip, replayed System runs
 * matching generator-driven runs on identical data, malformed-input
 * rejection).
 */

#include <gtest/gtest.h>
#include <memory>

#include <sstream>

#include "baselines/designs.hh"
#include "core/scheduler.hh"
#include "core/validate.hh"
#include "graph/parser.hh"
#include "models/models.hh"
#include "models/random.hh"
#include "trace/replay.hh"

namespace {

using namespace adyna;
using namespace adyna::core;

arch::HwConfig
hw()
{
    return arch::HwConfig{};
}

// ----------------------------------------------------------- validate

TEST(ValidateSchedule, AcceptsSchedulerOutput)
{
    for (const auto &name : models::workloadNames()) {
        const auto bundle = models::buildByName(name, 64);
        const auto dg = graph::parseModel(bundle.graph);
        costmodel::Mapper mapper(hw().tech);
        Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
        const Schedule s =
            sched.build({}, sched.initialKernelValues(), nullptr);
        const auto issues = validateSchedule(s, dg, hw());
        EXPECT_TRUE(issues.empty())
            << name << ":\n" << issuesToString(issues);
    }
}

TEST(ValidateSchedule, AcceptsRandomModels)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        models::RandomModelParams params;
        params.batch = 16;
        const auto bundle = models::buildRandomDynNN(params, seed);
        const auto dg = graph::parseModel(bundle.graph);
        costmodel::Mapper mapper(hw().tech);
        Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
        const Schedule s =
            sched.build({}, sched.initialKernelValues(), nullptr);
        const auto issues = validateSchedule(s, dg, hw());
        EXPECT_TRUE(issues.empty())
            << "seed " << seed << ":\n" << issuesToString(issues);
    }
}

TEST(ValidateSchedule, FlagsCorruptedSchedules)
{
    const auto bundle = models::buildSkipNet(32);
    const auto dg = graph::parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    Schedule s = sched.build({}, sched.initialKernelValues(), nullptr);

    // Drop one stage: coverage violation.
    Schedule missing = s;
    missing.mutableSegment(0).stages.pop_back();
    EXPECT_FALSE(validateSchedule(missing, dg, hw()).empty());

    // Out-of-range tile id.
    Schedule badTile = s;
    badTile.mutableSegment(0).stages[0].tiles[0] =
        static_cast<TileId>(hw().tiles() + 5);
    EXPECT_FALSE(validateSchedule(badTile, dg, hw()).empty());

    // Remove the worst-case kernel from one dynamic stage.
    Schedule badStore = s;
    for (auto &st : badStore.mutableSegment(0).stages) {
        if (!dg.isDynamic(st.op))
            continue;
        auto &slot = st.stores.begin()->second;
        if (slot->size() > 1) {
            kernels::KernelStore copy = *slot;
            copy.remove(copy.values().back());
            slot = std::make_shared<const kernels::KernelStore>(
                std::move(copy));
            break;
        }
    }
    EXPECT_FALSE(validateSchedule(badStore, dg, hw()).empty());

    // Swap two stages: topological-order violation.
    Schedule swapped = s;
    auto &swapStages = swapped.mutableSegment(0).stages;
    std::swap(swapStages[0], swapStages[2]);
    EXPECT_FALSE(validateSchedule(swapped, dg, hw()).empty());

    const auto issues = validateSchedule(swapped, dg, hw());
    EXPECT_NE(issuesToString(issues).find("topological"),
              std::string::npos);
}

// -------------------------------------------------------------- replay

TEST(Replay, SaveLoadRoundTrip)
{
    const auto bundle = models::buildTutelMoe(16);
    const auto dg = graph::parseModel(bundle.graph);
    trace::TraceGenerator gen(dg, bundle.traceConfig, 5);
    const auto batches = trace::captureTrace(gen, 7);

    std::stringstream ss;
    trace::saveTrace(ss, batches);
    const auto loaded = trace::loadTrace(ss);
    ASSERT_EQ(loaded.size(), batches.size());
    for (std::size_t b = 0; b < batches.size(); ++b) {
        ASSERT_EQ(loaded[b].outcomes.size(),
                  batches[b].outcomes.size());
        for (const auto &[sw, oc] : batches[b].outcomes) {
            const auto &lo = loaded[b].outcomes.at(sw);
            EXPECT_EQ(lo.branchCounts, oc.branchCounts);
            EXPECT_EQ(lo.activeBefore, oc.activeBefore);
            EXPECT_EQ(lo.activeAfter, oc.activeAfter);
        }
    }
}

TEST(Replay, RejectsMalformedInput)
{
    {
        std::stringstream ss("not-a-trace v1 3\n");
        EXPECT_EXIT((void)trace::loadTrace(ss),
                    ::testing::ExitedWithCode(1), "adyna-trace");
    }
    {
        std::stringstream ss("adyna-trace v1 2\nbatch 0\n");
        EXPECT_EXIT((void)trace::loadTrace(ss),
                    ::testing::ExitedWithCode(1), "declares 2");
    }
    {
        std::stringstream ss(
            "adyna-trace v1 1\nswitch 3 before 4 after 4 counts 1\n");
        EXPECT_EXIT((void)trace::loadTrace(ss),
                    ::testing::ExitedWithCode(1),
                    "before any batch");
    }
}

TEST(Replay, SystemReplayMatchesGeneratorOnSameData)
{
    const auto bundle = models::buildSkipNet(32);
    const auto dg = graph::parseModel(bundle.graph);
    const int batches = 30;

    // Generator-driven run.
    auto genSys =
        baselines::makeSystem(dg, bundle.traceConfig, hw(),
                              baselines::Design::AdynaStatic, batches,
                              11);
    const auto genRep = genSys.run();

    // Capture exactly the routing stream that run consumed: the main
    // stream (seed) plus nothing else -- rebuild it.
    trace::TraceGenerator gen(dg, bundle.traceConfig, 11);
    auto captured = trace::captureTrace(gen, batches);

    auto repSys =
        baselines::makeSystem(dg, bundle.traceConfig, hw(),
                              baselines::Design::AdynaStatic, batches,
                              11);
    repSys.setReplay(std::move(captured));
    const auto repRep = repSys.run();

    // Identical routing data with the static design (the offline
    // profile differs: it uses the replay prefix) still yields the
    // same batch count and the same order of magnitude; with equal
    // profiles the runtimes would match exactly, so just check the
    // engine consumed the replayed stream.
    EXPECT_EQ(repRep.batchEnds.size(),
              static_cast<std::size_t>(batches));
    EXPECT_GT(repRep.cycles, 0u);
    EXPECT_NEAR(repRep.timeMs, genRep.timeMs, 0.5 * genRep.timeMs);
}

TEST(Replay, FileRoundTrip)
{
    const auto bundle = models::buildSkipNet(16);
    const auto dg = graph::parseModel(bundle.graph);
    trace::TraceGenerator gen(dg, bundle.traceConfig, 3);
    const auto batches = trace::captureTrace(gen, 4);
    const std::string path = "/tmp/adyna_trace_test.txt";
    trace::saveTraceFile(path, batches);
    const auto loaded = trace::loadTraceFile(path);
    EXPECT_EQ(loaded.size(), 4u);
}

} // namespace
