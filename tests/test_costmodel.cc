/**
 * @file
 * Unit tests for the dataflow cost model: the blocked-reuse traffic
 * formulas against hand-computed GEMM cases, compute-cycle ceilings,
 * kernel fitting semantics, mapper search quality, and the Table IV
 * area/power budget.
 */

#include <gtest/gtest.h>

#include "costmodel/area.hh"
#include "costmodel/cost.hh"
#include "costmodel/mapper.hh"
#include "graph/op.hh"

namespace {

using namespace adyna;
using namespace adyna::costmodel;
using namespace adyna::graph;

TechParams
tech()
{
    return TechParams{};
}

OpNode
matmulOp(std::int64_t n, std::int64_t k, std::int64_t c)
{
    OpNode op;
    op.kind = OpKind::MatMul;
    op.name = "mm";
    op.dims = LoopDims::matmul(n, k, c);
    return op;
}

OpNode
convOp(std::int64_t n, std::int64_t k, std::int64_t c, std::int64_t p,
       std::int64_t q, std::int64_t r, std::int64_t s, int stride = 1)
{
    OpNode op;
    op.kind = OpKind::Conv2d;
    op.name = "conv";
    op.dims = LoopDims::conv(n, k, c, p, q, r, s);
    op.stride = stride;
    return op;
}

// ----------------------------------------------------- blockedTraffic

TEST(BlockedTraffic, GemmNOuterReloadsWeightsPerNBlock)
{
    // N=4 blocks of 16, K=1 block, C=1 block. Order N,K,C: weights
    // are re-fetched for every N block.
    const auto dims = LoopDims::matmul(64, 128, 256);
    auto block = LoopDims::matmul(16, 128, 256);
    const auto t = blockedTraffic(dims, block, LoopOrder::NOuter, 1, 2);
    EXPECT_EQ(t.weights, Bytes{4} * 128 * 256 * 2);
    EXPECT_EQ(t.inputs, Bytes{64} * 256 * 2);       // one pass
    EXPECT_EQ(t.outputWrites, Bytes{64} * 128 * 2); // one pass
    EXPECT_EQ(t.outputReads, 0u);
}

TEST(BlockedTraffic, GemmKOuterReloadsInputsPerKBlock)
{
    const auto dims = LoopDims::matmul(64, 128, 256);
    auto block = LoopDims::matmul(64, 32, 256); // K in 4 blocks
    const auto t = blockedTraffic(dims, block, LoopOrder::KOuter, 1, 2);
    EXPECT_EQ(t.weights, Bytes{128} * 256 * 2); // one pass
    EXPECT_EQ(t.inputs, Bytes{4} * 64 * 256 * 2);
    EXPECT_EQ(t.outputWrites, Bytes{64} * 128 * 2);
    EXPECT_EQ(t.outputReads, 0u);
}

TEST(BlockedTraffic, GemmCOuterSpillsPartialSums)
{
    const auto dims = LoopDims::matmul(64, 128, 256);
    auto block = LoopDims::matmul(64, 128, 64); // C in 4 blocks
    const auto t = blockedTraffic(dims, block, LoopOrder::COuter, 1, 2);
    EXPECT_EQ(t.weights, Bytes{128} * 256 * 2);
    EXPECT_EQ(t.inputs, Bytes{64} * 256 * 2);
    // Output block resident per C iteration: written 4x, read 3x.
    EXPECT_EQ(t.outputWrites, Bytes{4} * 64 * 128 * 2);
    EXPECT_EQ(t.outputReads, Bytes{3} * 64 * 128 * 2);
}

TEST(BlockedTraffic, WholeTensorBlocksAreSinglePass)
{
    const auto dims = LoopDims::matmul(64, 128, 256);
    const auto t = blockedTraffic(dims, dims, LoopOrder::NOuter, 1, 2);
    EXPECT_EQ(t.weights, Bytes{128} * 256 * 2);
    EXPECT_EQ(t.inputs, Bytes{64} * 256 * 2);
    EXPECT_EQ(t.outputWrites, Bytes{64} * 128 * 2);
    EXPECT_EQ(t.outputReads, 0u);
}

TEST(BlockedTraffic, ConvHaloIncludedInInputBlocks)
{
    // One output-row block of height 4 at stride 1 with R=3 needs 6
    // input rows.
    const auto dims = LoopDims::conv(1, 1, 1, 8, 8, 3, 3);
    auto block = LoopDims::conv(1, 1, 1, 4, 8, 3, 3);
    const auto t = blockedTraffic(dims, block, LoopOrder::NOuter, 1, 2);
    // 2 P-blocks, each (4-1)*1+3 = 6 rows x (8-1)+3 = 10 cols.
    EXPECT_EQ(t.inputs, Bytes{2} * 6 * 10 * 2);
}

TEST(BlockedTraffic, OversizedBlocksClampToDims)
{
    const auto dims = LoopDims::matmul(8, 8, 8);
    auto block = LoopDims::matmul(64, 64, 64);
    const auto t = blockedTraffic(dims, block, LoopOrder::NOuter, 1, 2);
    EXPECT_EQ(t.weights, Bytes{8} * 8 * 2);
}

// ---------------------------------------------------------- evalKernel

Mapping
simpleMapping(const OpNode &op, std::int64_t n, int tiles,
              std::vector<SpatialSplit> splits)
{
    Mapping m;
    m.compiledDims = op.dims.with(Dim::N, n);
    m.tiles = tiles;
    m.splits = std::move(splits);
    m.spadBlock = m.perTileDims();
    m.order = LoopOrder::NOuter;
    return m;
}

TEST(EvalKernel, CyclesMatchArrayThroughputOnPerfectShapes)
{
    // 32x32 array, K=64 -> 2 lanes, C=32 -> 1 lane, N=128.
    const OpNode op = matmulOp(128, 64, 32);
    const Mapping m = simpleMapping(op, 128, 1, {});
    const auto c = evalKernel(op, m, 128, true, tech());
    EXPECT_EQ(c.cycles, Cycles{128} * 2 * 1);
    EXPECT_EQ(c.usefulMacs, MacCount{128} * 64 * 32);
    EXPECT_EQ(c.issuedMacs, c.usefulMacs);
}

TEST(EvalKernel, CeilPenaltyForRaggedArrayShapes)
{
    // K=33 needs 2 row lanes even though only 1/32 of one is used.
    const OpNode op = matmulOp(16, 33, 32);
    const Mapping m = simpleMapping(op, 16, 1, {});
    const auto c = evalKernel(op, m, 16, true, tech());
    EXPECT_EQ(c.cycles, Cycles{16} * 2);
}

TEST(EvalKernel, NSplitDividesWorkAcrossTiles)
{
    const OpNode op = matmulOp(128, 64, 32);
    const Mapping m =
        simpleMapping(op, 128, 4, {SpatialSplit{Dim::N, 4}});
    const auto c = evalKernel(op, m, 128, true, tech());
    // Per tile: N=32, 2 K-lanes.
    EXPECT_EQ(c.cycles, Cycles{32} * 2);
}

TEST(EvalKernel, FittingClampsToActualValue)
{
    const OpNode op = matmulOp(128, 64, 32);
    const Mapping m = simpleMapping(op, 128, 1, {});
    const auto fit = evalKernel(op, m, 40, true, tech());
    const auto unfit = evalKernel(op, m, 40, false, tech());
    EXPECT_EQ(fit.cycles, Cycles{40} * 2);
    EXPECT_EQ(unfit.cycles, Cycles{128} * 2);
    EXPECT_EQ(fit.usefulMacs, unfit.usefulMacs);
    EXPECT_LT(fit.issuedMacs, unfit.issuedMacs);
    EXPECT_LT(fit.computeEnergyPj, unfit.computeEnergyPj);
}

TEST(EvalKernel, FittingWithNSplitLosesParallelism)
{
    // Kernel compiled for 128 over 8 tiles: chunks of 16. At actual
    // 20, tile 0 still processes 16 rows (makespan), while a kernel
    // compiled for 20 would use chunks of 3.
    const OpNode op = matmulOp(128, 64, 32);
    const Mapping big =
        simpleMapping(op, 128, 8, {SpatialSplit{Dim::N, 8}});
    const auto mismatched = evalKernel(op, big, 20, true, tech());

    OpNode op20 = op;
    const Mapping right =
        simpleMapping(op20, 20, 8, {SpatialSplit{Dim::N, 8}});
    const auto matched = evalKernel(op20, right, 20, true, tech());
    EXPECT_GT(mismatched.cycles, matched.cycles);
    EXPECT_EQ(mismatched.cycles, Cycles{16} * 2);
    EXPECT_EQ(matched.cycles, Cycles{3} * 2);
}

TEST(EvalKernel, ZeroActualWithFittingIsFree)
{
    const OpNode op = matmulOp(128, 64, 32);
    const Mapping m = simpleMapping(op, 128, 1, {});
    const auto c = evalKernel(op, m, 0, true, tech());
    EXPECT_EQ(c.cycles, 0u);
    EXPECT_EQ(c.usefulMacs, 0u);
}

TEST(EvalKernel, SpadFootprintCountsWeightsAndDoubleBuffers)
{
    const OpNode op = matmulOp(16, 64, 64);
    const Mapping m = simpleMapping(op, 16, 1, {});
    const auto c = evalKernel(op, m, 16, true, tech());
    const Bytes weights = Bytes{64} * 64 * 2;
    const Bytes in = Bytes{16} * 64 * 2;
    const Bytes out = Bytes{16} * 64 * 2;
    EXPECT_EQ(c.spadFootprint, weights + 2 * (in + out));
}

TEST(EvalKernel, KSplitPartitionsWeights)
{
    const OpNode op = matmulOp(16, 64, 64);
    const Mapping m =
        simpleMapping(op, 16, 4, {SpatialSplit{Dim::K, 4}});
    const auto c = evalKernel(op, m, 16, true, tech());
    // Per-tile weights = K/4 x C.
    EXPECT_LT(c.spadFootprint, Bytes{64} * 64 * 2);
}

TEST(EvalKernel, VectorOpCycles)
{
    EXPECT_EQ(vectorOpCycles(1024, 1, tech()), 1u);
    EXPECT_EQ(vectorOpCycles(1025, 1, tech()), 2u);
    EXPECT_EQ(vectorOpCycles(2048, 2, tech()), 1u);
}

// -------------------------------------------------------------- Mapper

TEST(Mapper, PrefersSplitsThatDivideEvenly)
{
    Mapper mapper(tech());
    const OpNode op = matmulOp(128, 2048, 512);
    const auto [m, c] = mapper.searchWithCost(op, 128, 4);
    // K-split by 4: per-tile K = 512 -> 16 lanes; N-split gives
    // per-tile N = 32 with 64 K lanes: both 32*... evaluate: any
    // valid mapping must beat the unsplit cycle count / 1.
    const Mapping unsplit = simpleMapping(op, 128, 1, {});
    const auto cu = evalKernel(op, unsplit, 128, true, tech());
    EXPECT_LE(c.cycles * 4, cu.cycles + 4); // near-linear speedup
    EXPECT_EQ(m.tiles, 4);
}

TEST(Mapper, FeasibleMappingFitsScratchpad)
{
    Mapper mapper(tech());
    // Weights 2 MB: must split K across tiles to fit 512 kB spads.
    const OpNode op = matmulOp(64, 1024, 1024);
    const auto [m, c] = mapper.searchWithCost(op, 64, 8);
    EXPECT_LE(c.spadFootprint,
              static_cast<Bytes>(0.95 * 512 * 1024));
    EXPECT_GT(m.splitFactor(Dim::K), 1);
}

TEST(Mapper, CacheHitsOnRepeatedQueries)
{
    Mapper mapper(tech());
    const OpNode op = matmulOp(128, 256, 256);
    (void)mapper.search(op, 64, 4);
    const auto before = mapper.hits();
    (void)mapper.search(op, 64, 4);
    EXPECT_EQ(mapper.hits(), before + 1);
}

TEST(Mapper, MemoKeyIgnoresBatchExtent)
{
    // The memo key zeroes the N extent: the searched value overrides
    // the batch size, so ops differing only in N share one entry.
    Mapper mapper(tech());
    (void)mapper.search(matmulOp(128, 256, 256), 64, 4);
    const auto before = mapper.hits();
    (void)mapper.search(matmulOp(512, 256, 256), 64, 4);
    EXPECT_EQ(mapper.hits(), before + 1);
    EXPECT_EQ(mapper.misses(), 1u);
}

TEST(Mapper, MemoKeyDistinguishesStrideAndDtype)
{
    // Stride and dtype change the mapping search (halo traffic,
    // scratchpad footprint), so each must get its own memo entry.
    Mapper mapper(tech());
    (void)mapper.search(convOp(8, 64, 64, 28, 28, 3, 3, 1), 8, 4);
    (void)mapper.search(convOp(8, 64, 64, 28, 28, 3, 3, 2), 8, 4);
    EXPECT_EQ(mapper.hits(), 0u);
    EXPECT_EQ(mapper.misses(), 2u);

    OpNode fp32 = matmulOp(128, 256, 256);
    fp32.dtypeBytes = 4;
    (void)mapper.search(matmulOp(128, 256, 256), 64, 4);
    (void)mapper.search(fp32, 64, 4);
    EXPECT_EQ(mapper.hits(), 0u);
    EXPECT_EQ(mapper.misses(), 4u);
}

TEST(Mapper, DifferentValuesAreDifferentKernels)
{
    Mapper mapper(tech());
    const OpNode op = matmulOp(128, 256, 256);
    const Mapping a = mapper.search(op, 128, 4);
    const Mapping b = mapper.search(op, 16, 4);
    EXPECT_EQ(a.compiledDims.n(), 128);
    EXPECT_EQ(b.compiledDims.n(), 16);
}

TEST(Mapper, ConvMappingHandlesStride)
{
    Mapper mapper(tech());
    const OpNode op = convOp(8, 64, 64, 28, 28, 3, 3, 2);
    const auto [m, c] = mapper.searchWithCost(op, 8, 9);
    EXPECT_GT(c.cycles, 0u);
    EXPECT_GT(c.usefulMacs, 0u);
    EXPECT_EQ(m.tiles, 9);
}

// ---------------------------------------------------------- Table IV

TEST(AreaPower, TileBudgetMatchesTableIV)
{
    const TileBudget b = tileBudget(tech());
    EXPECT_NEAR(b.totalAreaMm2(), 3.567, 0.01);
    EXPECT_NEAR(b.totalPowerMw(), 1416.34, 0.5);
    // DynNN additions (dispatcher/controller + NIC) ~4.9% of area.
    EXPECT_NEAR(b.dynnnAreaFraction(), 0.049, 0.005);
}

TEST(AreaPower, ChipScalesLinearly)
{
    const TileBudget chip = chipBudget(tech(), 144);
    EXPECT_NEAR(chip.totalAreaMm2(), 3.567 * 144, 1.0);
    // ~204 W chip (201 W in the paper at slightly different rounding).
    EXPECT_NEAR(chip.totalPowerMw() / 1000.0, 204.0, 5.0);
}

TEST(AreaPower, BudgetScalesWithArrayAndSpad)
{
    TechParams t2 = tech();
    t2.peRows = 16;
    t2.peCols = 16;
    t2.spadBytes = Bytes{256} << 10;
    const TileBudget b = tileBudget(t2);
    EXPECT_NEAR(b.components[0].areaMm2, 1.981 / 4.0, 1e-6);
    EXPECT_NEAR(b.components[1].areaMm2, 1.413 / 2.0, 1e-6);
}

TEST(TechParams, KernelBudgetMatchesPaper)
{
    const TechParams t = tech();
    EXPECT_EQ(t.kernelSpadBudget(), Bytes{26214});
    EXPECT_EQ(t.maxKernelsPerTile(), 204); // ~200 in the paper
    EXPECT_EQ(t.macsPerCycle(), 1024);
}

} // namespace

namespace {

TEST(ComputeCyclesPerRow, FoldsFilterIntoColumnsForTinyC)
{
    const TechParams t;
    // Stem-like shape: C=3, R=S=7. Plain mapping wastes 29/32
    // columns; folding C*R*S=147 into the columns recovers them.
    const auto d = LoopDims::conv(1, 64, 3, 112, 112, 7, 7);
    const double perRow = computeCyclesPerRow(d, t);
    const double plain = 112.0 * 112 * 7 * 7 * 2 * 1;
    const double foldRS = 112.0 * 112 * 2 * 5; // ceil(147/32) = 5
    EXPECT_DOUBLE_EQ(perRow, foldRS);
    EXPECT_LT(perRow, plain / 4.0);
}

TEST(ComputeCyclesPerRow, NoRegressionOnWideChannels)
{
    const TechParams t;
    // C=64, 3x3: plain = 9 * ceil(64/32) = 18 lane-steps; folding S
    // gives 3 * ceil(192/32) = 18; folding RS gives ceil(576/32) =
    // 18. All equal: folding never hurts aligned shapes.
    const auto d = LoopDims::conv(1, 32, 64, 14, 14, 3, 3);
    EXPECT_DOUBLE_EQ(computeCyclesPerRow(d, t), 14.0 * 14 * 18);
}

TEST(ComputeCyclesPerRow, MatmulUnaffectedByFolding)
{
    const TechParams t;
    const auto d = LoopDims::matmul(1, 768, 768);
    EXPECT_DOUBLE_EQ(computeCyclesPerRow(d, t), 24.0 * 24);
}

TEST(EvalKernel, MultiPassDispatchCoversOversizedValues)
{
    // A kernel compiled for 50 rows executing 120 actual rows via
    // the store's multi-pass dispatch: cost of 3 passes.
    TechParams t;
    OpNode op;
    op.kind = OpKind::MatMul;
    op.name = "mm";
    op.dims = LoopDims::matmul(50, 64, 64);
    Mapping m;
    m.compiledDims = op.dims;
    m.tiles = 1;
    m.spadBlock = op.dims;
    const auto onePass = evalKernel(op, m, 50, true, t);
    const auto partial = evalKernel(op, m, 20, true, t);
    // 2 full passes + 1 partial (engine composes these).
    EXPECT_EQ(2 * onePass.cycles + partial.cycles,
              Cycles{2 * 50 + 20} * 2 * 2);
}

TEST(BlockedTraffic, KOuterWithPinnedWeightsHasNoSpill)
{
    // After the pinned-weight clamp, K-outer blocking with full K/C
    // blocks re-reads nothing: exactly one activation pass.
    TechParams t;
    OpNode op;
    op.kind = OpKind::Conv2d;
    op.dims = LoopDims::conv(32, 128, 128, 28, 28, 3, 3);
    Mapper mapper(t);
    for (int tiles : {1, 4, 12}) {
        const auto [m, cost] = mapper.searchWithCost(op, 32, tiles);
        EXPECT_EQ(cost.dramSpillBytes, 0u) << m.str();
    }
}

} // namespace
