/**
 * @file
 * Unit tests for the architecture substrate: torus NoC routing and
 * contention, HBM channel mapping and gap-filling, chip occupancy
 * accounting, and the hardware profiler.
 */

#include <gtest/gtest.h>

#include "arch/chip.hh"
#include "arch/hbm.hh"
#include "arch/hwconfig.hh"
#include "arch/noc.hh"
#include "arch/profiler.hh"

namespace {

using namespace adyna;
using namespace adyna::arch;

HwConfig
cfg()
{
    return HwConfig{};
}

// ------------------------------------------------------------ HwConfig

TEST(HwConfig, TableIIIDefaults)
{
    const HwConfig hw = cfg();
    EXPECT_EQ(hw.tiles(), 144);
    // 144 tiles x 1024 MACs x 2 flops at 1 GHz ~ 295 TFLOPS.
    EXPECT_NEAR(hw.peakTflops(), 294.9, 0.5);
    EXPECT_EQ(hw.totalSpad(), Bytes{72} << 20);
    EXPECT_EQ(hw.hbmStacks, 6);
}

TEST(HwConfig, SnakeOrderVisitsAllTilesWithAdjacency)
{
    const HwConfig hw = cfg();
    const auto order = snakeTileOrder(hw);
    ASSERT_EQ(order.size(), 144u);
    std::vector<bool> seen(144, false);
    for (TileId t : order) {
        ASSERT_LT(t, 144u);
        EXPECT_FALSE(seen[t]);
        seen[t] = true;
    }
    // Consecutive entries are grid neighbours.
    for (std::size_t i = 1; i < order.size(); ++i) {
        const int dr = std::abs(hw.tileRow(order[i]) -
                                hw.tileRow(order[i - 1]));
        const int dc = std::abs(hw.tileCol(order[i]) -
                                hw.tileCol(order[i - 1]));
        EXPECT_EQ(dr + dc, 1);
    }
}

// ----------------------------------------------------------------- Noc

TEST(Noc, HopsUseTorusShortcuts)
{
    const HwConfig hw = cfg();
    Noc noc(hw);
    // Tile 0 (0,0) to tile 11 (0,11): one hop around the torus.
    EXPECT_EQ(noc.hops(0, 11), 1);
    // (0,0) to (0,6): six hops either way.
    EXPECT_EQ(noc.hops(0, 6), 6);
    // (0,0) to (11,11): 1 + 1 wrap hops.
    EXPECT_EQ(noc.hops(0, 143), 2);
    EXPECT_EQ(noc.hops(5, 5), 0);
}

TEST(Noc, TransferTimeScalesWithBytesAndHops)
{
    const HwConfig hw = cfg();
    Noc noc(hw);
    const auto t = noc.transfer(0, 0, 1, 1920); // 1 hop east
    EXPECT_EQ(t.hops, 1);
    // 1920 B at 192 B/cycle = 10 cycles + 1 hop x 2 cycles.
    EXPECT_EQ(t.end, 12u);
    EXPECT_EQ(t.byteHops, 1920u);
}

TEST(Noc, SelfTransferIsFree)
{
    const HwConfig hw = cfg();
    Noc noc(hw);
    const auto t = noc.transfer(100, 7, 7, 1 << 20);
    EXPECT_EQ(t.end, 100u);
    EXPECT_EQ(t.byteHops, 0u);
}

TEST(Noc, SharedLinkContends)
{
    const HwConfig hw = cfg();
    Noc noc(hw);
    const auto a = noc.transfer(0, 0, 2, 19200); // crosses link 0->1
    const auto b = noc.transfer(0, 0, 1, 19200); // same first link
    EXPECT_GE(b.end, a.start + 100); // queued behind a on link 0-E
}

TEST(Noc, ProbeAckIsRoundTrip)
{
    const HwConfig hw = cfg();
    Noc noc(hw);
    EXPECT_EQ(noc.probeAckLatency(0, 6),
              Tick{2} * 6 * hw.nocHopLatency);
}

// ----------------------------------------------------------------- Hbm

TEST(Hbm, ChannelsCoverColumnBands)
{
    const HwConfig hw = cfg();
    Hbm hbm(hw);
    EXPECT_EQ(hbm.channelOf(0), 0);   // col 0
    EXPECT_EQ(hbm.channelOf(11), 5);  // col 11
    EXPECT_EQ(hbm.channelOf(6), 3);   // col 6
}

TEST(Hbm, AccessAddsLatencyAndBandwidthTime)
{
    const HwConfig hw = cfg();
    Hbm hbm(hw);
    // 307 B/cycle per channel: 3070 B = 10 cycles + 120 latency.
    const auto a = hbm.access(0, 0, 3070);
    EXPECT_EQ(a.end, 10u + hw.hbmLatency);
    EXPECT_EQ(hbm.bytesServed(), 3070u);
}

TEST(Hbm, GapFillingAvoidsHeadOfLineBlocking)
{
    const HwConfig hw = cfg();
    Hbm hbm(hw);
    // A late-issued reservation far in the future...
    (void)hbm.access(1000000, 0, 3070);
    // ...must not delay an earlier-time request issued afterwards.
    const auto early = hbm.access(0, 0, 3070);
    EXPECT_LT(early.end, 1000u);
}

TEST(Hbm, DistinctChannelsDoNotContend)
{
    const HwConfig hw = cfg();
    Hbm hbm(hw);
    const auto a = hbm.access(0, 0, 1 << 20);  // channel 0
    const auto b = hbm.access(0, 11, 1 << 20); // channel 5
    EXPECT_EQ(a.start, b.start);
}

// ---------------------------------------------------------------- Chip

TEST(Chip, OccupyTilesSerializesPerTile)
{
    Chip chip(cfg());
    const auto a = chip.occupyTiles(0, {0, 1}, 100);
    EXPECT_EQ(a.start, 0u);
    const auto b = chip.occupyTiles(0, {1, 2}, 50); // overlaps tile 1
    EXPECT_EQ(b.start, 100u);
    const auto c = chip.occupyTiles(0, {5}, 10); // disjoint
    EXPECT_EQ(c.start, 0u);
    EXPECT_EQ(chip.tilesFreeAt({0}), 100u);
    EXPECT_EQ(chip.tilesFreeAt({1}), 150u);
    EXPECT_EQ(chip.allTilesFreeAt(), 150u);
    EXPECT_EQ(chip.busyTileCycles(), 100u * 2 + 50 * 2 + 10);
}

TEST(Chip, UtilizationAndEnergyAccounting)
{
    Chip chip(cfg());
    // Full-chip peak for 100 cycles.
    chip.recordMacs(static_cast<MacCount>(144) * 1024 * 100,
                    static_cast<MacCount>(144) * 1024 * 50);
    EXPECT_DOUBLE_EQ(chip.peUtilization(100), 1.0);
    EXPECT_DOUBLE_EQ(chip.peUtilization(200), 0.5);

    chip.chargeHbmEnergy(1000);
    chip.chargeNocEnergy(1000);
    chip.chargePeEnergy(42.0);
    chip.chargeSramEnergy(7.0);
    EXPECT_NEAR(chip.energy().hbm, 31.2 * 1000, 1e-6);
    EXPECT_NEAR(chip.energy().noc, 0.8 * 1000, 1e-6);
    EXPECT_NEAR(chip.energy().pe, 42.0, 1e-6);
    EXPECT_NEAR(chip.energy().sram, 7.0, 1e-6);
    EXPECT_GT(chip.energy().total(), 31000.0);

    chip.reset();
    EXPECT_EQ(chip.issuedMacs(), 0u);
    EXPECT_EQ(chip.energy().total(), 0.0);
}

// ------------------------------------------------------------ Profiler

TEST(Profiler, FrequencyTablesAccumulateAndReset)
{
    Profiler prof;
    prof.recordValue(3, 10);
    prof.recordValue(3, 10);
    prof.recordValue(3, 20);
    EXPECT_EQ(prof.table(3).total(), 3u);
    EXPECT_EQ(prof.table(3).count(10), 2u);
    EXPECT_NEAR(prof.table(3).expectation(), 40.0 / 3.0, 1e-9);
    EXPECT_TRUE(prof.table(99).empty());
    ASSERT_EQ(prof.trackedOps().size(), 1u);

    prof.resetTables();
    EXPECT_TRUE(prof.table(3).empty());
}

TEST(Profiler, BranchActivityAndCovariance)
{
    Profiler prof;
    // Two perfectly anti-correlated branches and one dead branch.
    for (int i = 0; i < 10; ++i) {
        const std::int64_t a = i % 2 == 0 ? 10 : 2;
        const std::int64_t b = i % 2 == 0 ? 2 : 10;
        prof.recordBranchLoads(7, {a, b, 0});
    }
    EXPECT_LT(prof.branchCovariance(7, 0, 1), 0.0);
    EXPECT_GT(prof.branchCovariance(7, 0, 0), 0.0);
    EXPECT_DOUBLE_EQ(prof.branchActivity(7, 0), 1.0);
    EXPECT_DOUBLE_EQ(prof.branchActivity(7, 2), 0.0);
    // Unknown switch: no history, assume active.
    EXPECT_DOUBLE_EQ(prof.branchActivity(8, 0), 1.0);
    EXPECT_DOUBLE_EQ(prof.branchCovariance(8, 0, 1), 0.0);
}

TEST(Profiler, HistoryIsBounded)
{
    Profiler prof(4);
    for (int i = 0; i < 10; ++i)
        prof.recordBranchLoads(1, {i, i});
    EXPECT_EQ(prof.branchHistory(1).size(), 4u);
    EXPECT_EQ(prof.branchHistory(1).back()[0], 9);
}

TEST(Profiler, WindowBatchesCountResetsWithTables)
{
    Profiler prof;
    EXPECT_EQ(prof.windowBatches(), 0u);
    for (int i = 0; i < 5; ++i) {
        prof.recordValue(1, i);
        prof.noteBatch();
    }
    EXPECT_EQ(prof.windowBatches(), 5u);
    prof.resetTables();
    EXPECT_EQ(prof.windowBatches(), 0u);
    EXPECT_TRUE(prof.table(1).empty());
    prof.noteBatch();
    prof.reset();
    EXPECT_EQ(prof.windowBatches(), 0u);
}

TEST(Profiler, SnapshotIsDeepCopy)
{
    Profiler prof;
    prof.recordValue(2, 10);
    const auto snap = prof.tablesSnapshot();
    prof.recordValue(2, 99);
    prof.recordValue(5, 1);
    EXPECT_EQ(snap.at(2).total(), 1u);
    EXPECT_EQ(snap.count(5), 0u);
}

TEST(Profiler, DriftL1ZeroOnSelfAndDisjointOps)
{
    Profiler prof;
    for (int i = 0; i < 100; ++i)
        prof.recordValue(1, i % 7);
    EXPECT_DOUBLE_EQ(prof.driftL1(prof.tablesSnapshot()), 0.0);

    // Nothing comparable: reference tracks a different op.
    Profiler other;
    other.recordValue(42, 3);
    EXPECT_DOUBLE_EQ(prof.driftL1(other.tablesSnapshot()), 0.0);
}

TEST(Profiler, DriftL1TakesWorstOpNotTheMean)
{
    // Op 1 is stationary, op 2 shifts completely: a mean over ops
    // would halve the signal, the max must keep it at 2 (disjoint
    // supports under normalized L1).
    Profiler ref, cur;
    for (int i = 0; i < 200; ++i) {
        ref.recordValue(1, i % 4);
        cur.recordValue(1, i % 4);
        ref.recordValue(2, 0);
        cur.recordValue(2, 1000);
    }
    const double d = cur.driftL1(ref.tablesSnapshot());
    EXPECT_NEAR(d, 2.0, 1e-9);
}

} // namespace

namespace {

TEST(NocMulticast, SharedPrefixLinksReservedOnce)
{
    const HwConfig hw = cfg();
    Noc noc(hw);
    // Tile 0 to tiles 2 and 3 (same row): paths share links 0->1->2.
    const auto m = noc.multicast(0, 0, {2, 3}, 1920);
    // Unique links: 0-E, 1-E, 2-E = 3 links x 1920 bytes.
    EXPECT_EQ(m.byteHops, 3u * 1920u);
    EXPECT_EQ(m.hops, 3);
    // Versus two unicasts: 2 + 3 = 5 link reservations.
    Noc noc2(hw);
    const auto a = noc2.transfer(0, 0, 2, 1920);
    const auto b = noc2.transfer(0, 0, 3, 1920);
    EXPECT_EQ(a.byteHops + b.byteHops, 5u * 1920u);
    // The multicast also finishes no later than the serialized
    // unicasts on the shared first link.
    EXPECT_LE(m.end, std::max(a.end, b.end));
}

TEST(NocMulticast, SelfAndEmptyDestinations)
{
    const HwConfig hw = cfg();
    Noc noc(hw);
    EXPECT_EQ(noc.multicast(5, 0, {}, 100).end, 5u);
    EXPECT_EQ(noc.multicast(5, 0, {0}, 100).end, 5u);
    EXPECT_EQ(noc.byteHopsServed(), 0u);
}

TEST(NocMulticast, MatchesUnicastForSingleDestination)
{
    const HwConfig hw = cfg();
    Noc a(hw), b(hw);
    const auto mu = a.multicast(0, 0, {14}, 4096);
    const auto un = b.transfer(0, 0, 14, 4096);
    EXPECT_EQ(mu.end, un.end);
    EXPECT_EQ(mu.byteHops, un.byteHops);
}

} // namespace
