/**
 * @file
 * Property-based tests: parameterized sweeps over operator shapes,
 * dyn values, seeds, and policies asserting the invariants the
 * simulator and scheduler rely on (monotonicity, conservation,
 * bounds), rather than specific numbers.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/designs.hh"
#include "core/sampling.hh"
#include "costmodel/cost.hh"
#include "costmodel/mapper.hh"
#include "graph/parser.hh"
#include "kernels/codec.hh"
#include "kernels/store.hh"
#include "models/models.hh"
#include "trace/trace.hh"

namespace {

using namespace adyna;
using namespace adyna::costmodel;
using namespace adyna::graph;

// ---------------------------------------------- cost-model invariants

struct ShapeCase
{
    std::int64_t n, k, c, p, q, r, s;
    int stride;
};

class CostProps : public ::testing::TestWithParam<ShapeCase>
{
  protected:
    OpNode
    op() const
    {
        const ShapeCase sc = GetParam();
        OpNode o;
        o.kind = sc.r > 1 || sc.p > 1 ? OpKind::Conv2d : OpKind::MatMul;
        o.dims = LoopDims::conv(sc.n, sc.k, sc.c, sc.p, sc.q, sc.r,
                                sc.s);
        o.stride = sc.stride;
        return o;
    }
};

TEST_P(CostProps, CyclesMonotoneInActualValue)
{
    TechParams tech;
    Mapper mapper(tech);
    const OpNode o = op();
    const Mapping m = mapper.search(o, o.dims.n(), 4);
    Cycles prev = 0;
    for (std::int64_t v = 0; v <= o.dims.n();
         v += std::max<std::int64_t>(1, o.dims.n() / 7)) {
        const auto cost = evalKernel(o, m, v, true, tech);
        EXPECT_GE(cost.cycles, prev);
        prev = cost.cycles;
    }
}

TEST_P(CostProps, FittingNeverCostsMoreThanWorstCase)
{
    TechParams tech;
    Mapper mapper(tech);
    const OpNode o = op();
    const Mapping m = mapper.search(o, o.dims.n(), 6);
    for (std::int64_t v : {std::int64_t{1}, o.dims.n() / 3,
                           o.dims.n()}) {
        if (v < 1)
            continue;
        const auto fit = evalKernel(o, m, v, true, tech);
        const auto unfit = evalKernel(o, m, v, false, tech);
        EXPECT_LE(fit.cycles, unfit.cycles);
        EXPECT_LE(fit.issuedMacs, unfit.issuedMacs);
        EXPECT_EQ(fit.usefulMacs, unfit.usefulMacs);
        EXPECT_GE(fit.issuedMacs, fit.usefulMacs);
    }
}

TEST_P(CostProps, CyclesRespectArrayThroughputBound)
{
    TechParams tech;
    Mapper mapper(tech);
    const OpNode o = op();
    for (int tiles : {1, 4, 9}) {
        const auto [m, cost] = mapper.searchWithCost(o, o.dims.n(),
                                                     tiles);
        // Makespan cannot beat perfect MAC throughput on the group.
        const double ideal =
            static_cast<double>(o.dims.macs()) /
            (static_cast<double>(tiles) * tech.macsPerCycle());
        EXPECT_GE(static_cast<double>(cost.cycles) * tiles *
                      tech.macsPerCycle(),
                  static_cast<double>(cost.usefulMacs) * 0.999)
            << m.str();
        EXPECT_GE(cost.cycles, static_cast<Cycles>(ideal / tiles));
    }
}

TEST_P(CostProps, TrafficIncludesCompulsoryPass)
{
    const OpNode o = op();
    if (!isCompute(o.kind))
        return;
    LoopDims block = o.dims;
    block[Dim::N] = std::max<std::int64_t>(1, o.dims.n() / 4);
    block[Dim::P] = std::max<std::int64_t>(1, o.dims.p() / 2);
    const auto t =
        blockedTraffic(o.dims, block, LoopOrder::NOuter, o.stride, 2);
    EXPECT_GE(t.weights, o.weightBytes());
    EXPECT_GE(t.outputWrites, o.outputBytes());
    // Input includes at least the halo-free volume.
    EXPECT_GE(t.inputs,
              static_cast<Bytes>(o.dims.n() * o.dims.c() * o.dims.p() *
                                 o.dims.q() * 2));
}

TEST_P(CostProps, CodecRoundTripAcrossShapes)
{
    TechParams tech;
    Mapper mapper(tech);
    const OpNode o = op();
    for (int tiles : {1, 3, 8}) {
        const Mapping m = mapper.search(o, o.dims.n(), tiles);
        const auto back =
            kernels::decodeKernel(kernels::encodeKernel(m, o.stride,
                                                        tech));
        EXPECT_EQ(back.compiledDims, m.compiledDims);
        EXPECT_EQ(back.tiles, m.tiles);
        EXPECT_EQ(back.order, m.order);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CostProps,
    ::testing::Values(ShapeCase{128, 64, 64, 56, 56, 3, 3, 1},
                      ShapeCase{128, 512, 512, 7, 7, 3, 3, 1},
                      ShapeCase{64, 64, 3, 112, 112, 7, 7, 2},
                      ShapeCase{2048, 768, 768, 1, 1, 1, 1, 1},
                      ShapeCase{8192, 384, 1536, 1, 1, 1, 1, 1},
                      ShapeCase{16, 1000, 512, 1, 1, 1, 1, 1},
                      ShapeCase{128, 256, 128, 14, 14, 3, 3, 2}));

// --------------------------------------------------- dispatch sweeps

class DispatchProps : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(DispatchProps, CoversEveryActualValue)
{
    const std::int64_t maxV = GetParam();
    kernels::KernelStore store;
    for (std::int64_t v : kernels::uniformKernelValues(maxV, 16)) {
        kernels::Kernel k;
        k.value = v;
        store.add(std::move(k));
    }
    for (std::int64_t v = 1; v <= maxV;
         v += std::max<std::int64_t>(1, maxV / 97)) {
        const auto d = store.dispatch(v);
        const std::int64_t kv = store.at(d.index).value;
        // Either a covering kernel, or multi-pass with full passes.
        EXPECT_GE(kv * d.passes, v);
        if (d.passes == 1) {
            EXPECT_GE(kv, v);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ranges, DispatchProps,
                         ::testing::Values(7, 64, 128, 1000, 8192));

// --------------------------------------------- sampling conservation

class SamplingProps : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SamplingProps, ResampleKeepsInvariants)
{
    Rng rng(GetParam());
    const std::int64_t maxV = 1 + rng.uniformInt(16, 8192);
    auto vals = kernels::uniformKernelValues(maxV, 24);
    std::vector<double> freq(vals.size());
    for (double &f : freq)
        f = rng.uniform(0.0, 100.0);
    const auto out = core::resampleKernelValues(
        vals, freq, static_cast<int>(vals.size()));
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.back(), maxV); // worst case always covered
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_GE(out[i], 1);
        if (i) {
            EXPECT_LT(out[i - 1], out[i]);
        }
    }
    // Redistribution conserves mass for the final set.
    const auto redist = core::redistributeFrequencies(vals, freq, out);
    double a = 0, b = 0;
    for (double f : freq)
        a += f;
    for (double f : redist)
        b += f;
    EXPECT_NEAR(a, b, 1e-6 * std::max(1.0, a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingProps,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

// ------------------------------------------- trace conservation sweep

class TraceProps
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 std::uint64_t>>
{
};

TEST_P(TraceProps, DynValuesBoundedForAllWorkloadsAndSeeds)
{
    const auto [name, seed] = GetParam();
    const auto bundle = models::buildByName(name, 32);
    const DynGraph dg = parseModel(bundle.graph);
    trace::TraceConfig cfg = bundle.traceConfig;
    cfg.batchSize = 32;
    trace::TraceGenerator gen(dg, cfg, seed);
    for (int b = 0; b < 25; ++b) {
        const auto r = gen.next();
        for (OpId op : dg.dynamicOps()) {
            const auto v = r.dynValue(dg, op);
            EXPECT_GE(v, 0);
            EXPECT_LE(v, dg.maxDyn(op));
        }
        for (const auto &[sw, oc] : r.outcomes) {
            EXPECT_GE(oc.activeBefore, oc.activeAfter);
            for (std::int64_t c : oc.branchCounts)
                EXPECT_GE(c, 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceProps,
    ::testing::Combine(::testing::Values("skipnet", "pabee", "fbsnet",
                                         "tutel-moe", "dpsnet",
                                         "adavit"),
                       ::testing::Values(1u, 17u, 99u)),
    [](const auto &ti) {
        std::string n = std::get<0>(ti.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n + "_s" + std::to_string(std::get<1>(ti.param));
    });

// ---------------------------------------------- system-level scaling

TEST(SystemProps, TimeScalesRoughlyLinearlyWithBatches)
{
    const auto bundle = models::buildSkipNet(32);
    const DynGraph dg = parseModel(bundle.graph);
    const arch::HwConfig hw;
    auto timeFor = [&](int batches) {
        auto sys = baselines::makeSystem(dg, bundle.traceConfig, hw,
                                         baselines::Design::Adyna,
                                         batches, 3);
        return sys.run().timeMs;
    };
    const double t40 = timeFor(40);
    const double t120 = timeFor(120);
    EXPECT_GT(t120, 2.0 * t40);
    EXPECT_LT(t120, 4.0 * t40);
}

TEST(SystemProps, EnergyNeverNegativeAndAdditive)
{
    const auto bundle = models::buildFbsNet(32);
    const DynGraph dg = parseModel(bundle.graph);
    const arch::HwConfig hw;
    for (auto d : baselines::allDesigns()) {
        auto sys = baselines::makeSystem(dg, bundle.traceConfig, hw, d,
                                         20, 4);
        const auto rep = sys.run();
        EXPECT_GE(rep.energy.pe, 0.0);
        EXPECT_GE(rep.energy.sram, 0.0);
        EXPECT_GE(rep.energy.hbm, 0.0);
        EXPECT_GE(rep.energy.noc, 0.0);
        EXPECT_NEAR(rep.energy.total(),
                    rep.energy.pe + rep.energy.sram + rep.energy.hbm +
                        rep.energy.noc,
                    1e-3);
    }
}

} // namespace
