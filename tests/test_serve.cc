/**
 * @file
 * Unit tests for the online serving runtime: arrival-process
 * determinism and rate calibration, batcher max-batch / max-wait
 * invariants and routing merges, SLO accounting, drift-monitor
 * hysteresis and noise-floor behaviour, and end-to-end ServeRuntime
 * determinism (the stationary adaptive run must match the static
 * run exactly).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "baselines/designs.hh"
#include "graph/parser.hh"
#include "kernels/store_cache.hh"
#include "models/models.hh"
#include "serve/arrival.hh"
#include "serve/batcher.hh"
#include "serve/drift.hh"
#include "serve/server.hh"
#include "serve/slo.hh"
#include "serve/tenant.hh"
#include "serve/validate.hh"
#include "trace/trace.hh"

namespace {

using namespace adyna;
using namespace adyna::serve;

// ------------------------------------------------------ ArrivalProcess

TEST(Arrival, PoissonDeterministicForSameSeed)
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 1e6;
    ArrivalProcess a(cfg, 7), b(cfg, 7), c(cfg, 8);
    bool anyDiffer = false;
    for (int i = 0; i < 500; ++i) {
        const Tick ta = a.next();
        EXPECT_EQ(ta, b.next());
        anyDiffer |= ta != c.next();
    }
    EXPECT_TRUE(anyDiffer) << "seed must matter";
    EXPECT_EQ(a.generated(), 500u);
}

TEST(Arrival, PoissonMonotoneAndMeanRate)
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 1e6; // 1000 ticks mean gap at 1 GHz
    cfg.freqGhz = 1.0;
    ArrivalProcess p(cfg, 42);
    const int n = 20000;
    Tick prev = 0, last = 0;
    for (int i = 0; i < n; ++i) {
        const Tick t = p.next();
        EXPECT_GE(t, prev);
        prev = t;
        last = t;
    }
    const double meanGap = static_cast<double>(last) / n;
    EXPECT_NEAR(meanGap, 1000.0, 30.0); // 3% tolerance
}

TEST(Arrival, BurstyKeepsLongRunMeanRateButBursts)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Bursty;
    cfg.ratePerSec = 1e6;
    // Short dwells so the horizon covers ~100 burst/normal cycles
    // (the long-run mean only shows over many state switches).
    cfg.burstDwellSec = 5e-4;
    const int n = 400000;

    ArrivalProcess bursty(cfg, 3);
    std::vector<double> gaps;
    Tick prev = 0, lastB = 0;
    for (int i = 0; i < n; ++i) {
        const Tick t = bursty.next();
        gaps.push_back(static_cast<double>(t - prev));
        prev = t;
        lastB = t;
    }
    // Long-run mean rate within 10% of the configured one.
    EXPECT_NEAR(static_cast<double>(lastB) / n, 1000.0, 100.0);

    // Burstiness: the inter-arrival coefficient of variation must
    // exceed the exponential's CV of 1 (MMPP-2 is over-dispersed).
    const double mean =
        std::accumulate(gaps.begin(), gaps.end(), 0.0) / n;
    double var = 0.0;
    for (double g : gaps)
        var += (g - mean) * (g - mean);
    var /= n;
    EXPECT_GT(std::sqrt(var) / mean, 1.1);
}

TEST(Arrival, TraceRoundTripAndReplayWrap)
{
    const std::vector<double> ts = {0.001, 0.002, 0.004};
    const std::string path =
        ::testing::TempDir() + "/adyna_arrivals.txt";
    saveArrivalTrace(path, ts);
    EXPECT_EQ(loadArrivalTrace(path), ts);

    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Replay;
    cfg.traceFile = path;
    cfg.freqGhz = 1.0;
    ArrivalProcess p(cfg, 1);
    // Timestamps are re-based so the first arrival is at t = 0.
    EXPECT_EQ(p.next(), Tick{0});
    EXPECT_EQ(p.next(), Tick{1000000});
    EXPECT_EQ(p.next(), Tick{3000000});
    // Wrap: shifted by span (3 ms) + one mean gap (1.5 ms).
    EXPECT_EQ(p.next(), Tick{4500000});
    EXPECT_EQ(p.next(), Tick{5500000});
    std::remove(path.c_str());
}

// ------------------------------------------------------------- Batcher

trace::BatchRouting
requestDraw(const graph::DynGraph &dg, trace::TraceConfig tc,
            std::uint64_t seed, int skip = 0)
{
    tc.batchSize = 1;
    tc.driftStrength = 0.0;
    trace::TraceGenerator gen(dg, tc, seed);
    for (int i = 0; i < skip; ++i)
        (void)gen.next();
    return gen.next();
}

TEST(Batcher, EmptyQueueNeverForms)
{
    Batcher b(BatchPolicy{4, 100});
    EXPECT_EQ(b.nextFormTick(), Batcher::kNever);
    EXPECT_EQ(b.queued(), 0u);
}

TEST(Batcher, FullBatchFormsOnLastArrival)
{
    Batcher b(BatchPolicy{3, 1000});
    b.enqueue({0, 10, {}});
    EXPECT_EQ(b.nextFormTick(), Tick{1010}); // oldest + maxWait
    b.enqueue({1, 20, {}});
    b.enqueue({2, 30, {}});
    // Queue reached maxBatch: formable at the third arrival.
    EXPECT_EQ(b.nextFormTick(), Tick{30});
}

TEST(Batcher, FormTakesOldestFifoAndLeavesRest)
{
    Batcher b(BatchPolicy{2, 1000});
    for (std::uint64_t i = 0; i < 5; ++i)
        b.enqueue({i, static_cast<Tick>(10 * (i + 1)), {}});
    FormedBatch f = b.form(b.nextFormTick());
    ASSERT_EQ(f.requests.size(), 2u);
    EXPECT_EQ(f.requests[0].id, 0u);
    EXPECT_EQ(f.requests[1].id, 1u);
    EXPECT_EQ(f.formedAt, Tick{20});
    EXPECT_EQ(b.queued(), 3u);
    // Admitting more can only move the form tick earlier, never later.
    const Tick before = b.nextFormTick();
    b.enqueue({9, 60, {}});
    EXPECT_LE(b.nextFormTick(), before);
}

TEST(Batcher, PartialBatchFormsAtMaxWait)
{
    Batcher b(BatchPolicy{8, 500});
    b.enqueue({0, 100, {}});
    b.enqueue({1, 140, {}});
    EXPECT_EQ(b.nextFormTick(), Tick{600});
    FormedBatch f = b.form(600);
    EXPECT_EQ(f.requests.size(), 2u);
    EXPECT_EQ(b.queued(), 0u);
    EXPECT_EQ(b.nextFormTick(), Batcher::kNever);
}

TEST(Batcher, CancelRemovesQueuedRequestById)
{
    Batcher b(BatchPolicy{8, 500});
    b.enqueue({0, 100, {}});
    b.enqueue({1, 140, {}});
    b.enqueue({2, 180, {}});

    // Cancelling a queued id (a hedge loser) removes exactly it.
    EXPECT_TRUE(b.cancel(1));
    EXPECT_EQ(b.queued(), 2u);
    EXPECT_FALSE(b.cancel(1)); // already gone
    EXPECT_FALSE(b.cancel(99)); // never enqueued
    EXPECT_EQ(b.queued(), 2u);

    FormedBatch f = b.form(b.nextFormTick());
    ASSERT_EQ(f.requests.size(), 2u);
    EXPECT_EQ(f.requests[0].id, 0u);
    EXPECT_EQ(f.requests[1].id, 2u);

    // Cancelling the head recomputes the form tick from the new
    // oldest arrival.
    b.enqueue({3, 1000, {}});
    b.enqueue({4, 1300, {}});
    EXPECT_EQ(b.nextFormTick(), Tick{1500});
    EXPECT_TRUE(b.cancel(3));
    EXPECT_EQ(b.nextFormTick(), Tick{1800});
}

TEST(Batcher, MergedRoutingSumsPerRequestDraws)
{
    models::ModelBundle bundle = models::buildByName("skipnet", 4);
    const graph::DynGraph dg = graph::parseModel(bundle.graph);

    Batcher b(BatchPolicy{3, 1000});
    std::vector<trace::BatchRouting> draws;
    for (int i = 0; i < 3; ++i) {
        draws.push_back(
            requestDraw(dg, bundle.traceConfig, 11, /*skip=*/i));
        b.enqueue({static_cast<std::uint64_t>(i),
                   static_cast<Tick>(i), draws.back()});
    }
    FormedBatch f = b.form(b.nextFormTick());

    for (const auto &[op, merged] : f.routing.outcomes) {
        std::int64_t before = 0, after = 0;
        std::vector<std::int64_t> counts(merged.branchCounts.size(),
                                         0);
        for (const trace::BatchRouting &d : draws) {
            const trace::SwitchOutcome &o = d.outcomes.at(op);
            before += o.activeBefore;
            after += o.activeAfter;
            ASSERT_EQ(o.branchCounts.size(), counts.size());
            for (std::size_t k = 0; k < counts.size(); ++k)
                counts[k] += o.branchCounts[k];
        }
        EXPECT_EQ(merged.activeBefore, before);
        EXPECT_EQ(merged.activeAfter, after);
        EXPECT_EQ(merged.branchCounts, counts);
    }
}

TEST(Batcher, IndependentTenantBatchersNeverMixRequests)
{
    // The multi-tenant runtime keeps one Batcher per tenant;
    // interleaved arrivals must stay in their own tenant's queue,
    // and each tenant's merged routing must equal the merge of only
    // its own draws.
    models::ModelBundle bundle = models::buildByName("skipnet", 4);
    const graph::DynGraph dg = graph::parseModel(bundle.graph);

    Batcher ba(BatchPolicy{2, 1000});
    Batcher bb(BatchPolicy{2, 1000});
    std::vector<trace::BatchRouting> drawsA, drawsB;
    // Tenant A gets even ids / even draw indices, B the odd ones, in
    // one interleaved arrival order.
    for (int i = 0; i < 4; ++i) {
        Batcher &b = (i % 2 == 0) ? ba : bb;
        auto &draws = (i % 2 == 0) ? drawsA : drawsB;
        draws.push_back(
            requestDraw(dg, bundle.traceConfig, 23, /*skip=*/i));
        b.enqueue({static_cast<std::uint64_t>(i),
                   static_cast<Tick>(10 * i), draws.back()});
    }
    ASSERT_EQ(ba.queued(), 2u);
    ASSERT_EQ(bb.queued(), 2u);

    const FormedBatch fa = ba.form(ba.nextFormTick());
    const FormedBatch fb = bb.form(bb.nextFormTick());
    ASSERT_EQ(fa.requests.size(), 2u);
    ASSERT_EQ(fb.requests.size(), 2u);
    EXPECT_EQ(fa.requests[0].id, 0u);
    EXPECT_EQ(fa.requests[1].id, 2u);
    EXPECT_EQ(fb.requests[0].id, 1u);
    EXPECT_EQ(fb.requests[1].id, 3u);
    EXPECT_EQ(ba.queued(), 0u);
    EXPECT_EQ(bb.queued(), 0u);

    const auto checkMerge = [](const FormedBatch &f,
                               const std::vector<trace::BatchRouting>
                                   &draws) {
        for (const auto &[op, merged] : f.routing.outcomes) {
            std::int64_t before = 0, after = 0;
            for (const trace::BatchRouting &d : draws) {
                before += d.outcomes.at(op).activeBefore;
                after += d.outcomes.at(op).activeAfter;
            }
            EXPECT_EQ(merged.activeBefore, before);
            EXPECT_EQ(merged.activeAfter, after);
        }
    };
    checkMerge(fa, drawsA);
    checkMerge(fb, drawsB);
}

// ---------------------------------------------------------- SloTracker

TEST(Slo, LatencyAccountingAndGoodput)
{
    // 1 GHz: 1e6 ticks per millisecond.
    SloTracker slo(SloConfig{2.0}, 1.0);
    EXPECT_DOUBLE_EQ(slo.sloAttainment(), 1.0);

    slo.record(0, 500000, 1000000);       // 1 ms, met
    slo.record(1000000, 1500000, 2500000); // 1.5 ms, met
    slo.record(2000000, 4000000, 6000000); // 4 ms, missed
    EXPECT_EQ(slo.completed(), 3u);
    EXPECT_EQ(slo.met(), 2u);
    EXPECT_NEAR(slo.sloAttainment(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(slo.meanLatencyMs(), (1.0 + 1.5 + 4.0) / 3, 1e-9);
    EXPECT_NEAR(slo.maxLatencyMs(), 4.0, 1e-9);
    EXPECT_NEAR(slo.meanQueueMs(), (0.5 + 0.5 + 2.0) / 3, 1e-9);
    EXPECT_EQ(slo.lastEnd(), Tick{6000000});
    EXPECT_NEAR(slo.latencyPercentileMs(0.5), 1.5, 1e-9);
    EXPECT_NEAR(slo.latencyPercentileMs(1.0), 4.0, 1e-9);
    // 2 met requests over a 6 ms horizon.
    EXPECT_NEAR(slo.goodputRps(6000000), 2.0 / 6e-3, 1e-6);
}

TEST(Slo, PerTenantTrackersSplitPercentilesAndGoodput)
{
    // One tracker per tenant (the multi-tenant layout): a
    // latency-critical tenant with a tight deadline and a
    // best-effort tenant with a loose one, interleaved in arrival
    // order as one co-scheduled run would record them. Each
    // tenant's percentiles and goodput must be computed from its
    // own samples alone.
    SloTracker lc(SloConfig{1.0}, 1.0); // 1 ms deadline
    SloTracker be(SloConfig{8.0}, 1.0); // 8 ms deadline

    // LC latencies: 0.4, 0.6, 2.0 ms (third misses its deadline).
    // BE latencies: 5, 6, 7 ms (all met despite being slower).
    lc.record(0, 100000, 400000);
    be.record(0, 3000000, 5000000);
    lc.record(1000000, 1200000, 1600000);
    be.record(1000000, 5000000, 7000000);
    lc.record(2000000, 3500000, 4000000);
    be.record(2000000, 8000000, 9000000);

    EXPECT_EQ(lc.completed(), 3u);
    EXPECT_EQ(be.completed(), 3u);
    EXPECT_EQ(lc.met(), 2u);
    EXPECT_EQ(be.met(), 3u);
    // p50 is each tenant's own middle sample; the fast tenant's
    // tail is not dragged up by the slow tenant's samples.
    EXPECT_NEAR(lc.latencyPercentileMs(0.5), 0.6, 1e-9);
    EXPECT_NEAR(be.latencyPercentileMs(0.5), 6.0, 1e-9);
    // Interpolated tail percentiles over [0.6, 2.0] and [6, 7].
    EXPECT_NEAR(lc.latencyPercentileMs(0.95), 0.6 + 1.4 * 0.9, 1e-9);
    EXPECT_NEAR(be.latencyPercentileMs(0.95), 6.0 + 1.0 * 0.9, 1e-9);
    EXPECT_NEAR(lc.latencyPercentileMs(0.99), 0.6 + 1.4 * 0.98,
                1e-9);
    EXPECT_NEAR(be.latencyPercentileMs(0.99), 6.0 + 1.0 * 0.98,
                1e-9);
    // Goodput over a shared 9 ms horizon splits per tenant: 2 vs 3
    // met requests, and the aggregate is their sum.
    EXPECT_NEAR(lc.goodputRps(9000000), 2.0 / 9e-3, 1e-6);
    EXPECT_NEAR(be.goodputRps(9000000), 3.0 / 9e-3, 1e-6);
    EXPECT_NEAR(lc.goodputRps(9000000) + be.goodputRps(9000000),
                5.0 / 9e-3, 1e-6);
}

TEST(Slo, EmptyTenantTrackerEdges)
{
    // A tenant that never completes anything (all shed, or zero
    // offered load) must report neutral metrics, not NaNs.
    SloTracker slo(SloConfig{2.0}, 1.0);
    EXPECT_EQ(slo.completed(), 0u);
    EXPECT_EQ(slo.met(), 0u);
    EXPECT_DOUBLE_EQ(slo.sloAttainment(), 1.0);
    EXPECT_DOUBLE_EQ(slo.latencyPercentileMs(0.5), 0.0);
    EXPECT_DOUBLE_EQ(slo.latencyPercentileMs(0.99), 0.0);
    EXPECT_DOUBLE_EQ(slo.goodputRps(0), 0.0);
    EXPECT_DOUBLE_EQ(slo.goodputRps(1000000), 0.0);
    EXPECT_EQ(slo.lastEnd(), Tick{0});
}

TEST(Slo, SingleSamplePercentilesCollapse)
{
    SloTracker slo(SloConfig{2.0}, 1.0);
    slo.record(0, 500000, 1500000); // 1.5 ms, met
    for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_NEAR(slo.latencyPercentileMs(q), 1.5, 1e-12)
            << "q=" << q;
    EXPECT_DOUBLE_EQ(slo.sloAttainment(), 1.0);
    EXPECT_NEAR(slo.goodputRps(1500000), 1.0 / 1.5e-3, 1e-6);
}

// -------------------------------------------------------- DriftMonitor

arch::Profiler
profilerWith(OpId op, std::uint64_t seed, int n, double shift)
{
    arch::Profiler prof;
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        prof.recordValue(
            op, static_cast<std::int64_t>(40 + 20 * u + shift));
        prof.noteBatch();
    }
    return prof;
}

TEST(Drift, StationaryWindowsNeverTrigger)
{
    DriftConfig cfg;
    cfg.hysteresisWindows = 2;
    cfg.cooldownWindows = 0;
    DriftMonitor mon(cfg);
    mon.setReference(
        profilerWith(1, 100, 4000, 0.0).tablesSnapshot());
    // Same-distribution probe pair calibrates the noise floor.
    mon.setNoiseFloor(mon.distanceTo(profilerWith(1, 101, 500, 0.0)));

    for (std::uint64_t s = 0; s < 30; ++s) {
        arch::Profiler window = profilerWith(1, 200 + s, 500, 0.0);
        EXPECT_FALSE(mon.observe(window)) << "window " << s;
    }
    EXPECT_EQ(mon.windowsObserved(), 30);
}

TEST(Drift, ShiftTriggersOnlyAfterHysteresis)
{
    DriftConfig cfg;
    cfg.hysteresisWindows = 2;
    cfg.cooldownWindows = 0;
    DriftMonitor mon(cfg);
    mon.setReference(
        profilerWith(1, 100, 4000, 0.0).tablesSnapshot());

    arch::Profiler shifted = profilerWith(1, 7, 500, 35.0);
    EXPECT_GT(mon.distanceTo(shifted), mon.effectiveThreshold());
    EXPECT_FALSE(mon.observe(shifted)); // 1st hot window: streak only
    EXPECT_EQ(mon.hotStreak(), 1);
    EXPECT_TRUE(mon.observe(shifted)); // 2nd consecutive: trigger
}

TEST(Drift, CooldownSuppressesRetrigger)
{
    DriftConfig cfg;
    cfg.hysteresisWindows = 1;
    cfg.cooldownWindows = 2;
    DriftMonitor mon(cfg);
    mon.setReference(
        profilerWith(1, 100, 4000, 0.0).tablesSnapshot());

    arch::Profiler shifted = profilerWith(1, 7, 500, 35.0);
    // setReference starts the cooldown: two windows are swallowed.
    EXPECT_FALSE(mon.observe(shifted));
    EXPECT_FALSE(mon.observe(shifted));
    EXPECT_TRUE(mon.observe(shifted));
}

TEST(Drift, MeanShiftBeyondBucketResolutionIsCaught)
{
    // A pure scale change: same histogram shape, every value doubled.
    arch::Profiler ref;
    arch::Profiler cur;
    for (int i = 0; i < 1000; ++i) {
        ref.recordValue(1, 10 + (i % 4));
        cur.recordValue(1, 20 + 2 * (i % 4));
    }
    DriftMonitor mon(DriftConfig{});
    mon.setReference(ref.tablesSnapshot());
    // The expectation roughly doubles -> relative shift near 1.
    EXPECT_GT(mon.distanceTo(cur), 0.9);
}

TEST(Drift, EffectiveThresholdTracksNoiseFloor)
{
    DriftConfig cfg;
    cfg.threshold = 0.15;
    cfg.noiseMultiplier = 2.5;
    DriftMonitor mon(cfg);
    EXPECT_DOUBLE_EQ(mon.effectiveThreshold(), 0.15);
    mon.setNoiseFloor(0.02); // below the absolute floor
    EXPECT_DOUBLE_EQ(mon.effectiveThreshold(), 0.15);
    mon.setNoiseFloor(0.2); // noisy workload raises the bar
    EXPECT_DOUBLE_EQ(mon.effectiveThreshold(), 0.5);
}

// -------------------------------------------------------- ServeRuntime

ServeReport
smokeServe(bool adaptive, double drift_strength, std::uint64_t seed)
{
    models::ModelBundle bundle = models::buildByName("skipnet", 8);
    const graph::DynGraph dg = graph::parseModel(bundle.graph);
    trace::TraceConfig tc = bundle.traceConfig;
    tc.batchSize = 8;
    tc.driftStrength = drift_strength;
    tc.driftPeriod = 40;

    const arch::HwConfig hw;
    ServeConfig sc;
    sc.arrival.ratePerSec = 5e5;
    sc.batching.maxBatch = 8;
    sc.batching.maxWaitCycles = 20000;
    sc.slo.deadlineMs = 1.0;
    sc.drift.windowRequests = 64;
    sc.driftReschedule = adaptive;
    sc.numRequests = 300;
    sc.profileBatches = 8;
    sc.seed = seed;

    ServeRuntime rt(
        dg, tc, hw,
        baselines::schedulerConfig(baselines::Design::Adyna),
        baselines::execPolicy(baselines::Design::Adyna), sc,
        "skipnet");
    // A run-private store cache: the reported JSON includes cache
    // counters, which would otherwise depend on how warm the
    // process-global cache is from earlier runs.
    kernels::KernelStoreCache stores;
    rt.setSharedStoreCache(&stores);
    return rt.run();
}

TEST(ServeRuntime, DeterministicForSameConfig)
{
    const ServeReport a = smokeServe(true, 0.0, 5);
    const ServeReport b = smokeServe(true, 0.0, 5);
    EXPECT_EQ(toJson(a), toJson(b));
    EXPECT_EQ(a.requests, 300u);
    EXPECT_GT(a.batches, 0u);
    EXPECT_GT(a.p50Ms, 0.0);
    EXPECT_LE(a.p50Ms, a.p95Ms);
    EXPECT_LE(a.p95Ms, a.p99Ms);
    EXPECT_LE(a.p99Ms, a.maxMs);
    EXPECT_GE(a.sloAttainment, 0.0);
    EXPECT_LE(a.sloAttainment, 1.0);
}

TEST(ServeRuntime, StationaryAdaptiveMatchesStaticExactly)
{
    const ServeReport adaptive = smokeServe(true, 0.0, 9);
    const ServeReport fixed = smokeServe(false, 0.0, 9);
    // No drift -> the monitor must stay quiet and the adaptive run
    // must follow the identical execution path.
    EXPECT_EQ(adaptive.reschedules, 0);
    EXPECT_EQ(adaptive.mode, "adaptive");
    EXPECT_EQ(fixed.mode, "static");
    EXPECT_EQ(adaptive.batches, fixed.batches);
    EXPECT_DOUBLE_EQ(adaptive.p99Ms, fixed.p99Ms);
    EXPECT_DOUBLE_EQ(adaptive.goodputRps, fixed.goodputRps);
    EXPECT_EQ(adaptive.horizonTicks, fixed.horizonTicks);
}

// ------------------------------------------------- config validation
// Every rejected field must die with a message naming the field, so
// a misconfigured CLI run points straight at the bad knob.

using Validate = ::testing::Test;

TEST(Validate, RejectsNonPositiveArrivalRate)
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 0.0;
    EXPECT_EXIT(validateArrivalConfig(cfg),
                ::testing::ExitedWithCode(1), "ratePerSec");
}

TEST(Validate, RejectsNonPositiveArrivalFreq)
{
    ArrivalConfig cfg;
    cfg.freqGhz = -1.0;
    EXPECT_EXIT(validateArrivalConfig(cfg),
                ::testing::ExitedWithCode(1), "freqGhz");
}

TEST(Validate, RejectsBurstMultiplierBelowOne)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Bursty;
    cfg.burstRateMultiplier = 0.5;
    EXPECT_EXIT(validateArrivalConfig(cfg),
                ::testing::ExitedWithCode(1), "burstRateMultiplier");
}

TEST(Validate, RejectsBurstFractionOutsideUnitInterval)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Bursty;
    cfg.burstFraction = 1.0;
    EXPECT_EXIT(validateArrivalConfig(cfg),
                ::testing::ExitedWithCode(1), "burstFraction");
}

TEST(Validate, RejectsNonPositiveBurstDwell)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Bursty;
    cfg.burstDwellSec = 0.0;
    EXPECT_EXIT(validateArrivalConfig(cfg),
                ::testing::ExitedWithCode(1), "burstDwellSec");
}

TEST(Validate, RejectsReplayWithoutTraceFile)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Replay;
    EXPECT_EXIT(validateArrivalConfig(cfg),
                ::testing::ExitedWithCode(1), "traceFile");
}

TEST(Validate, RejectsZeroMaxBatch)
{
    BatchPolicy policy;
    policy.maxBatch = 0;
    EXPECT_EXIT(validateBatchPolicy(policy),
                ::testing::ExitedWithCode(1), "maxBatch");
}

TEST(Validate, RejectsNonPositiveDeadline)
{
    SloConfig cfg;
    cfg.deadlineMs = 0.0;
    EXPECT_EXIT(validateSloConfig(cfg),
                ::testing::ExitedWithCode(1), "deadlineMs");
}

TEST(Validate, RejectsNonPositiveDriftWindow)
{
    DriftConfig cfg;
    cfg.windowRequests = 0;
    EXPECT_EXIT(validateDriftConfig(cfg),
                ::testing::ExitedWithCode(1), "windowRequests");
}

TEST(Validate, RejectsNegativeDriftThreshold)
{
    DriftConfig cfg;
    cfg.threshold = -0.1;
    EXPECT_EXIT(validateDriftConfig(cfg),
                ::testing::ExitedWithCode(1), "threshold");
}

TEST(Validate, RejectsNegativeNoiseMultiplier)
{
    DriftConfig cfg;
    cfg.noiseMultiplier = -1.0;
    EXPECT_EXIT(validateDriftConfig(cfg),
                ::testing::ExitedWithCode(1), "noiseMultiplier");
}

TEST(Validate, RejectsZeroHysteresisWindows)
{
    DriftConfig cfg;
    cfg.hysteresisWindows = 0;
    EXPECT_EXIT(validateDriftConfig(cfg),
                ::testing::ExitedWithCode(1), "hysteresisWindows");
}

TEST(Validate, RejectsNegativeCooldownWindows)
{
    DriftConfig cfg;
    cfg.cooldownWindows = -1;
    EXPECT_EXIT(validateDriftConfig(cfg),
                ::testing::ExitedWithCode(1), "cooldownWindows");
}

TEST(Validate, RejectsZeroL1Buckets)
{
    DriftConfig cfg;
    cfg.l1Buckets = 0;
    EXPECT_EXIT(validateDriftConfig(cfg),
                ::testing::ExitedWithCode(1), "l1Buckets");
}

TEST(Validate, RejectsNonPositiveNumRequests)
{
    ServeConfig cfg;
    cfg.numRequests = 0;
    EXPECT_EXIT(validateServeConfig(cfg),
                ::testing::ExitedWithCode(1), "numRequests");
}

TEST(Validate, RejectsNegativeProfileBatches)
{
    ServeConfig cfg;
    cfg.profileBatches = -1;
    EXPECT_EXIT(validateServeConfig(cfg),
                ::testing::ExitedWithCode(1), "profileBatches");
}

TEST(Validate, RejectsNonPositiveShedFactor)
{
    ServeConfig cfg;
    cfg.shedLatencyFactor = 0.0;
    EXPECT_EXIT(validateServeConfig(cfg),
                ::testing::ExitedWithCode(1), "shedLatencyFactor");
}

TEST(Validate, AcceptsDefaultsAndBurstyDefaults)
{
    validateServeConfig(ServeConfig{});
    ArrivalConfig bursty;
    bursty.kind = ArrivalKind::Bursty;
    validateArrivalConfig(bursty);
}

} // namespace

// -------------------------------------------- delta re-scheduling

namespace {

/** A drifting PABEE run (multi-segment, so delta re-schedules can
 * actually splice) with the delta path on or off. */
ServeReport
driftServe(bool delta_reschedule, std::uint64_t seed)
{
    models::ModelBundle bundle = models::buildByName("pabee", 8);
    const graph::DynGraph dg = graph::parseModel(bundle.graph);
    trace::TraceConfig tc = bundle.traceConfig;
    tc.batchSize = 8;
    tc.driftStrength = 0.9;
    tc.driftPeriod = 700;

    const arch::HwConfig hw;
    ServeConfig sc;
    sc.arrival.ratePerSec = 2e5;
    sc.batching.maxBatch = 8;
    sc.batching.maxWaitCycles = 20000;
    sc.slo.deadlineMs = 4.0;
    sc.drift.windowRequests = 200;
    // Slow drift keeps the calibrated noise floor low; pin the fixed
    // threshold below the accumulated shift so the trigger does not
    // depend on the calibration windows' sampling noise.
    sc.drift.noiseMultiplier = 1.0;
    sc.drift.threshold = 0.2;
    sc.numRequests = 2400;
    sc.profileBatches = 8;
    sc.seed = seed;
    sc.deltaReschedule = delta_reschedule;

    ServeRuntime rt(
        dg, tc, hw,
        baselines::schedulerConfig(baselines::Design::Adyna),
        baselines::execPolicy(baselines::Design::Adyna), sc,
        "pabee");
    kernels::KernelStoreCache stores;
    rt.setSharedStoreCache(&stores);
    return rt.run();
}

} // namespace

TEST(ServeRuntime, DeltaRescheduleCountsSplicedSegments)
{
    const ServeReport r = driftServe(true, 11);
    ASSERT_GT(r.reschedules, 0) << "drift must trigger";
    EXPECT_GT(r.deltaReschedules, 0);
    EXPECT_LE(r.deltaReschedules, r.reschedules);
    // Every delta re-schedule accounts each segment as either
    // spliced or rebuilt.
    EXPECT_GT(r.segmentsRebuilt + r.segmentsSpliced, 0u);
    EXPECT_GT(r.segmentsSpliced, 0u)
        << "multi-segment drift should splice the untouched segments";
}

TEST(ServeRuntime, DeltaOffNeverSplices)
{
    const ServeReport r = driftServe(false, 11);
    ASSERT_GT(r.reschedules, 0);
    EXPECT_EQ(r.deltaReschedules, 0);
    EXPECT_EQ(r.segmentsRebuilt, 0u);
    EXPECT_EQ(r.segmentsSpliced, 0u);
}

TEST(ServeRuntime, DeltaPathTracksFullRebuildServing)
{
    // The delta path may keep sub-tolerance stores the full rebuild
    // would refresh, so the runs need not be bit-identical -- but
    // the serving outcome must stay equivalent: same requests, same
    // batches, and drift triggering at the same windows.
    const ServeReport on = driftServe(true, 11);
    const ServeReport off = driftServe(false, 11);
    EXPECT_EQ(on.requests, off.requests);
    EXPECT_EQ(on.batches, off.batches);
    EXPECT_EQ(on.reschedules, off.reschedules);
    EXPECT_GT(on.goodputRps, 0.0);
    EXPECT_GT(off.goodputRps, 0.0);
}

namespace {

/** The driftServe workload with the anytime schedule search on the
 * drift path and an optional watchdog budget. */
ServeReport
searchServe(bool search_on, Cycles watchdog_budget,
            std::uint64_t seed)
{
    models::ModelBundle bundle = models::buildByName("pabee", 8);
    const graph::DynGraph dg = graph::parseModel(bundle.graph);
    trace::TraceConfig tc = bundle.traceConfig;
    tc.batchSize = 8;
    tc.driftStrength = 0.9;
    tc.driftPeriod = 700;

    const arch::HwConfig hw;
    ServeConfig sc;
    sc.arrival.ratePerSec = 2e5;
    sc.batching.maxBatch = 8;
    sc.batching.maxWaitCycles = 20000;
    sc.slo.deadlineMs = 4.0;
    sc.drift.windowRequests = 200;
    sc.drift.noiseMultiplier = 1.0;
    sc.drift.threshold = 0.2;
    sc.numRequests = 2400;
    sc.profileBatches = 8;
    sc.seed = seed;
    sc.rescheduleBudgetCycles = watchdog_budget;
    sc.searchOnDrift = search_on;
    sc.search.chains = 2;
    sc.search.mutationBudget = 200;
    sc.search.materializeTop = 2;

    ServeRuntime rt(
        dg, tc, hw,
        baselines::schedulerConfig(baselines::Design::Adyna),
        baselines::execPolicy(baselines::Design::Adyna), sc,
        "pabee");
    kernels::KernelStoreCache stores;
    rt.setSharedStoreCache(&stores);
    return rt.run();
}

} // namespace

TEST(ServeRuntime, SearchStaysInsideWatchdogBudget)
{
    // Generous budget: the heuristic rebuild fits and the search
    // gets the leftover. The serve-side guarantee under test is the
    // ISSUE's acceptance bound -- no drift re-schedule (rebuild +
    // search spend) may ever exceed the watchdog budget.
    const Cycles budget = 40'000'000;
    const ServeReport r = searchServe(true, budget, 11);
    ASSERT_GT(r.reschedules, 0) << "drift must trigger";
    EXPECT_TRUE(r.searchActive);
    EXPECT_GT(r.search.candidatesTried, 0u);
    EXPECT_LE(r.maxRescheduleCycles, budget);
    EXPECT_LE(r.search.budgetSpentCycles, budget);
    EXPECT_EQ(r.requests, 2400u);
}

TEST(ServeRuntime, SearchOffKeepsReportBytes)
{
    // Search-off runs must serialize the pre-search report exactly:
    // no search keys at all, and deterministically so.
    const ServeReport off = searchServe(false, 0, 11);
    const std::string offJson = toJson(off);
    EXPECT_EQ(offJson.find("search_"), std::string::npos);
    EXPECT_FALSE(off.searchActive);
    EXPECT_EQ(off.search.candidatesTried, 0u);

    const ServeReport on = searchServe(true, 0, 11);
    const std::string onJson = toJson(on);
    EXPECT_NE(onJson.find("search_reschedules"), std::string::npos);
    EXPECT_NE(onJson.find("search_budget_spent"),
              std::string::npos);
    EXPECT_EQ(on.requests, off.requests);
}

TEST(ServeRuntime, SearchRunIsDeterministic)
{
    const ServeReport a = searchServe(true, 40'000'000, 13);
    const ServeReport b = searchServe(true, 40'000'000, 13);
    EXPECT_EQ(toJson(a), toJson(b));
}

TEST(Validate, RejectsNegativeDeltaExpectationTol)
{
    ServeConfig cfg;
    cfg.arrival.ratePerSec = 1e5;
    cfg.deltaExpectationTol = -0.1;
    EXPECT_EXIT(validateServeConfig(cfg),
                ::testing::ExitedWithCode(1), "deltaExpectationTol");
}

// A tenant list the multi-tenant validator accepts; each rejection
// test below breaks exactly one field of a copy.
static std::vector<TenantSpec>
validTenants()
{
    std::vector<TenantSpec> tenants(2);
    tenants[0].id = "lc";
    tenants[0].cls = SloClass::LatencyCritical;
    tenants[0].serve.arrival.ratePerSec = 1e5;
    tenants[1].id = "be";
    tenants[1].cls = SloClass::BestEffort;
    tenants[1].serve.arrival.ratePerSec = 5e4;
    return tenants;
}

TEST(Validate, AcceptsWellFormedTenantList)
{
    validateTenantSpecs(validTenants()); // must not die
}

TEST(Validate, RejectsEmptyTenantList)
{
    EXPECT_EXIT(validateTenantSpecs({}),
                ::testing::ExitedWithCode(1), "at least one");
}

TEST(Validate, RejectsEmptyTenantId)
{
    auto tenants = validTenants();
    tenants[1].id.clear();
    EXPECT_EXIT(validateTenantSpecs(tenants),
                ::testing::ExitedWithCode(1), "must be non-empty");
}

TEST(Validate, RejectsDuplicateTenantIds)
{
    auto tenants = validTenants();
    tenants[1].id = tenants[0].id;
    EXPECT_EXIT(validateTenantSpecs(tenants),
                ::testing::ExitedWithCode(1), "duplicate tenant id");
}

TEST(Validate, RejectsNonPositiveTenantRate)
{
    auto tenants = validTenants();
    tenants[0].serve.arrival.ratePerSec = 0.0;
    EXPECT_EXIT(validateTenantSpecs(tenants),
                ::testing::ExitedWithCode(1), "ratePerSec");
}

TEST(Validate, RejectsNegativeTenantLoadWeight)
{
    auto tenants = validTenants();
    tenants[1].loadWeight = -0.5;
    EXPECT_EXIT(validateTenantSpecs(tenants),
                ::testing::ExitedWithCode(1), "loadWeight");
}

TEST(Validate, RejectsPerTenantFaultPlan)
{
    auto tenants = validTenants();
    tenants[0].serve.faultPlan.events.emplace_back();
    EXPECT_EXIT(validateTenantSpecs(tenants),
                ::testing::ExitedWithCode(1),
                "per-tenant fault plans");
}
