/**
 * @file
 * Integration tests for the runtime-adjustment mechanisms
 * (Section V-B): tile-sharing configuration selection under
 * anti-correlated branch loads, branch grouping's temporal tile
 * reuse, M-tenant's host routing serialization, and the
 * reconfiguration loop's profiler feedback.
 */

#include <gtest/gtest.h>

#include "arch/profiler.hh"
#include "baselines/designs.hh"
#include "core/engine.hh"
#include "core/scheduler.hh"
#include "graph/parser.hh"
#include "graph/transforms.hh"
#include "models/models.hh"

namespace {

using namespace adyna;
using namespace adyna::core;
using namespace adyna::graph;

arch::HwConfig
hw()
{
    return arch::HwConfig{};
}

/** Two-expert MoE whose loads swing strongly between batches; the
 * experts dominate the pipeline so their balance decides the
 * bottleneck. */
DynGraph
swingMoE(std::int64_t batch)
{
    Graph g("swing");
    OpId in = g.addInput("in", LoopDims::matmul(batch, 512, 512));
    OpId t = g.addMatMul("proj", in, 64, 512);
    OpId merge = addMoE(g, "moe", t, 2, 1, {},
                        [](Graph &gg, OpId s) {
                            OpId up =
                                gg.addMatMul("ffn.up", s, 4096, 64);
                            return gg.addMatMul("ffn.down", up, 64,
                                                4096);
                        });
    g.addOutput("out", g.addMatMul("head", merge, 16, 64));
    return parseModel(g);
}

/**
 * Hand-crafted bursty routings: one expert stays hot (90/10) for
 * eight batches, then the burst flips. Tile sharing shines exactly
 * here -- during a burst the cold expert's tiles are borrowed --
 * whereas a per-batch alternating pattern self-balances over time
 * and leaves no throughput to recover.
 */
std::vector<trace::BatchRouting>
swingRoutings(const DynGraph &dg, std::int64_t batch, int n)
{
    const OpId sw = dg.switches()[0].switchOp;
    std::vector<trace::BatchRouting> out;
    for (int b = 0; b < n; ++b) {
        trace::BatchRouting r;
        trace::SwitchOutcome oc;
        const std::int64_t hot = batch * 9 / 10;
        oc.branchCounts = (b / 8) % 2 == 0
                              ? std::vector<std::int64_t>{hot,
                                                          batch - hot}
                              : std::vector<std::int64_t>{batch - hot,
                                                          hot};
        oc.activeBefore = batch;
        oc.activeAfter = batch;
        r.outcomes[sw] = oc;
        out.push_back(std::move(r));
    }
    return out;
}

TEST(TileSharing, AbsorbsAntiCorrelatedSwings)
{
    const DynGraph dg = swingMoE(128);
    costmodel::Mapper mapper(hw().tech);

    // Profile with the swinging loads so the scheduler pairs the
    // two experts.
    arch::Profiler prof;
    const OpId sw = dg.switches()[0].switchOp;
    for (const auto &r : swingRoutings(dg, 128, 32))
        prof.recordBranchLoads(sw, r.outcomes.at(sw).branchCounts);

    SchedulerConfig shareCfg;
    shareCfg.tileSharing = true;
    SchedulerConfig plainCfg;
    plainCfg.tileSharing = false;
    Scheduler shareSched(dg, hw(), mapper, shareCfg);
    Scheduler plainSched(dg, hw(), mapper, plainCfg);
    const Schedule shared = shareSched.build({}, {}, &prof);
    const Schedule plain = plainSched.build({}, {}, &prof);
    // One pair per expert-stage depth (up and down).
    ASSERT_EQ(shared.segments[0]->pairs.size(), 2u);
    ASSERT_TRUE(plain.segments[0]->pairs.empty());

    ExecPolicy pol;
    Engine engShared(dg, hw(), mapper, pol);
    Engine engPlain(dg, hw(), mapper, pol);
    arch::Chip chipShared(hw()), chipPlain(hw());
    const auto rts = swingRoutings(dg, 128, 24);
    const auto a = engShared.runPeriod(chipShared, shared, rts,
                                       nullptr, 0);
    const auto b = engPlain.runPeriod(chipPlain, plain, rts, nullptr,
                                      0);
    // The sharing configuration must strictly beat the fixed split
    // on this adversarial swing pattern.
    EXPECT_LT(a.endTime, b.endTime);
}

TEST(TileSharing, DisablingAtRuntimeFallsBackToBase)
{
    const DynGraph dg = swingMoE(128);
    costmodel::Mapper mapper(hw().tech);
    arch::Profiler prof;
    const OpId sw = dg.switches()[0].switchOp;
    for (const auto &r : swingRoutings(dg, 128, 32))
        prof.recordBranchLoads(sw, r.outcomes.at(sw).branchCounts);
    SchedulerConfig cfg;
    cfg.tileSharing = true;
    Scheduler sched(dg, hw(), mapper, cfg);
    const Schedule s = sched.build({}, {}, &prof);
    ASSERT_FALSE(s.segments[0]->pairs.empty());

    // The engine honors policy.tileSharing = false even on a shared
    // schedule (base allocation only).
    ExecPolicy off;
    off.tileSharing = false;
    Engine eng(dg, hw(), mapper, off);
    arch::Chip chip(hw());
    const auto res =
        eng.runPeriod(chip, s, swingRoutings(dg, 128, 8), nullptr, 0);
    EXPECT_GT(res.endTime, 0u);
}

TEST(HostRouting, SerializesSwitchEdgesOnHostCpu)
{
    const auto bundle = models::buildSkipNet(64);
    const DynGraph dg = parseModel(bundle.graph);
    costmodel::Mapper mapper(hw().tech);
    SchedulerConfig scfg = baselines::schedulerConfig(
        baselines::Design::MTenant);
    Scheduler sched(dg, hw(), mapper, scfg);
    const Schedule s = sched.build({}, {}, nullptr);

    auto run = [&](Cycles syncCycles) {
        ExecPolicy pol =
            baselines::execPolicy(baselines::Design::MTenant);
        pol.hostSyncCycles = syncCycles;
        Engine eng(dg, hw(), mapper, pol);
        arch::Chip chip(hw());
        trace::TraceConfig cfg = bundle.traceConfig;
        cfg.batchSize = 64;
        trace::TraceGenerator gen(dg, cfg, 3);
        std::vector<trace::BatchRouting> rts;
        for (int i = 0; i < 6; ++i)
            rts.push_back(gen.next());
        return eng.runPeriod(chip, s, rts, nullptr, 0).endTime;
    };
    const Tick cheap = run(0);
    const Tick dear = run(200000); // 200 us per routing decision
    EXPECT_GT(dear, cheap + 200000);
}

TEST(Reconfiguration, CountsAndExpectationsFlow)
{
    const auto bundle = models::buildTutelMoe(32);
    const DynGraph dg = parseModel(bundle.graph);
    trace::TraceConfig cfg = bundle.traceConfig;
    cfg.batchSize = 32;
    auto opts = baselines::runOptions(baselines::Design::Adyna, 130,
                                      3);
    core::System sys(dg, cfg, hw(),
                     baselines::schedulerConfig(
                         baselines::Design::Adyna),
                     baselines::execPolicy(baselines::Design::Adyna),
                     opts, "Adyna");
    const auto rep = sys.run();
    // 130 batches at period 40 -> reconfigs after 40, 80, 120.
    EXPECT_EQ(rep.reconfigurations, 3);
    EXPECT_EQ(rep.batchEnds.size(), 130u);
}

TEST(BranchGrouping, GroupedStagesShareTilesTemporally)
{
    // 4-expert MoE with two cold experts: their stages share a tile
    // range and thus serialize, freeing tiles for the hot experts.
    Graph g("cold");
    OpId in = g.addInput("in", LoopDims::matmul(128, 256, 256));
    OpId t = g.addMatMul("proj", in, 256, 256);
    OpId merge = addMoE(g, "moe", t, 4, 1, {},
                        [](Graph &gg, OpId s) {
                            return gg.addMatMul("ffn", s, 256, 256);
                        });
    g.addOutput("out", merge);
    const DynGraph dg = parseModel(g);
    costmodel::Mapper mapper(hw().tech);

    arch::Profiler prof;
    const OpId sw = dg.switches()[0].switchOp;
    for (int i = 0; i < 32; ++i)
        prof.recordBranchLoads(sw, {70, 58, 0, i % 10 == 0 ? 3 : 0});

    SchedulerConfig cfg;
    cfg.branchGrouping = true;
    cfg.tileSharing = false;
    Scheduler sched(dg, hw(), mapper, cfg);
    const Schedule s = sched.build({}, {}, &prof);

    const auto &swi = dg.switchInfo(sw);
    const int s2 = s.segments[0]->stageOf(swi.branches[2][0]);
    const int s3 = s.segments[0]->stageOf(swi.branches[3][0]);
    ASSERT_GE(s2, 0);
    ASSERT_GE(s3, 0);
    const auto &st2 =
        s.segments[0]->stages[static_cast<std::size_t>(s2)];
    const auto &st3 =
        s.segments[0]->stages[static_cast<std::size_t>(s3)];
    EXPECT_EQ(st2.tiles, st3.tiles);
    // Hot experts keep disjoint ranges.
    const int s0 = s.segments[0]->stageOf(swi.branches[0][0]);
    const auto &st0 =
        s.segments[0]->stages[static_cast<std::size_t>(s0)];
    EXPECT_NE(st0.tiles, st2.tiles);
}

} // namespace
