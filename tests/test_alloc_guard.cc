/**
 * @file
 * Zero-allocation guards for the serve hot path: a steady-state
 * Engine::runPeriod (warm plan cache + exec memo, out-param result)
 * and a steady-state Simulator event churn (typed posts recycled
 * through the arena free-list) must not touch the heap.
 *
 * The guard counts calls to the replaceable global operator new. The
 * tests skip under sanitizer builds (ADYNA_SANITIZE): sanitizer
 * runtimes interpose the allocator and allocate internally, so the
 * counter stops measuring the code under test.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "arch/chip.hh"
#include "core/engine.hh"
#include "core/scheduler.hh"
#include "des/simulator.hh"
#include "graph/parser.hh"
#include "trace/trace.hh"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace adyna;
using namespace adyna::core;
using namespace adyna::graph;

arch::HwConfig
hw()
{
    return arch::HwConfig{};
}

DynGraph
staticPipe(std::int64_t batch)
{
    Graph g("pipe");
    OpId in = g.addInput("in", LoopDims::matmul(batch, 512, 512));
    OpId a = g.addMatMul("a", in, 512, 512);
    OpId b = g.addMatMul("b", a, 512, 512);
    OpId c = g.addMatMul("c", b, 512, 512);
    g.addOutput("out", c);
    return parseModel(g);
}

TEST(AllocGuard, SteadyStateRunPeriodAllocatesNothing)
{
#ifdef ADYNA_SANITIZE
    GTEST_SKIP() << "allocation counting is unreliable under "
                    "sanitizer runtimes";
#endif
    const DynGraph dg = staticPipe(64);
    costmodel::Mapper mapper(hw().tech);
    Scheduler sched(dg, hw(), mapper, SchedulerConfig{});
    const Schedule s = sched.build({}, {}, nullptr);

    ExecPolicy policy; // planCache + execCostMemo default on
    Engine eng(dg, hw(), mapper, policy);
    arch::Chip chip(hw());

    trace::TraceConfig tc;
    tc.batchSize = 64;
    tc.driftStrength = 0.0;
    trace::TraceGenerator gen(dg, tc, 1);
    std::vector<trace::BatchRouting> batches;
    for (int i = 0; i < 6; ++i)
        batches.push_back(gen.next());

    // Warm-up periods size every scratch vector, plan-cache entry,
    // and memo bucket. Several are needed: the HBM gap-resource's
    // interval vector oscillates over a multi-period trim/compaction
    // cycle, so its capacity peaks only after a few periods. The
    // barrier stays monotone like the serve loop's dispatch clock.
    PeriodResult out;
    Tick barrier = 0;
    for (int i = 0; i < 6; ++i) {
        eng.runPeriod(chip, s, batches, nullptr, barrier, out);
        barrier = out.endTime;
    }

    const std::uint64_t before =
        g_allocs.load(std::memory_order_relaxed);
    eng.runPeriod(chip, s, batches, nullptr, barrier, out);
    const std::uint64_t after =
        g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state runPeriod performed " << (after - before)
        << " heap allocations";
    EXPECT_EQ(out.batchEnds.size(), batches.size());
}

TEST(AllocGuard, SimulatorChurnAllocatesNothingAfterWarmup)
{
#ifdef ADYNA_SANITIZE
    GTEST_SKIP() << "allocation counting is unreliable under "
                    "sanitizer runtimes";
#endif
    des::Simulator sim;

    struct Churn
    {
        des::Simulator *sim;
        int remaining;

        static void
        handler(void *ctx, std::uint64_t, std::uint64_t)
        {
            auto *c = static_cast<Churn *>(ctx);
            if (c->remaining-- > 0)
                c->sim->postIn(1 + c->remaining % 13, 1);
        }
    };
    Churn churn{&sim, 0};
    sim.setHandler(1, &Churn::handler, &churn);

    const auto runBurst = [&] {
        churn.remaining = 20000;
        for (int i = 0; i < 24; ++i)
            sim.postIn(1 + i % 7, 1);
        sim.run();
    };
    runBurst(); // warm-up: grows the arena to its steady-state size

    const std::uint64_t before =
        g_allocs.load(std::memory_order_relaxed);
    runBurst();
    const std::uint64_t after =
        g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state event churn performed " << (after - before)
        << " heap allocations";
    EXPECT_EQ(sim.pending(), 0u);
}

} // namespace
