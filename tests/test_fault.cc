/**
 * @file
 * Tests for the fault-injection subsystem: FaultPlan grammar
 * round-trips and rejection of malformed text, deterministic random
 * plans, chip healthy-tile bookkeeping, NoC link-down detours and
 * probe-drop retry accounting, injector timelines (strike + heal),
 * degraded scheduling onto survivors, degraded lockstep execution,
 * and the serve-side fail-over / watchdog / admission-control paths
 * — including the empty-plan byte-identity guarantee.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "arch/chip.hh"
#include "baselines/designs.hh"
#include "core/report_io.hh"
#include "core/system.hh"
#include "fault/fault.hh"
#include "graph/parser.hh"
#include "kernels/store_cache.hh"
#include "models/models.hh"
#include "serve/server.hh"

namespace {

using namespace adyna;
using namespace adyna::fault;

// ------------------------------------------------------- FaultPlan

TEST(FaultPlan, ParseRoundTripsThroughStr)
{
    const std::string text =
        "tile_fail@5000:tile=17;"
        "tile_fail@9000:tile=3,duration=1000;"
        "link_down@100:tile=7,dir=E;"
        "link_degrade@200:tile=8,dir=S,factor=0.25,duration=50;"
        "probe_drop@300:prob=0.5,duration=400;"
        "store_fit_fail@600:duration=100;"
        "chip_fail@700:chip=1;"
        "chip_fail@800:chip=3,heal=2500";
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultPlan(text, plan, &err)) << err;
    EXPECT_EQ(plan.events.size(), 8u);

    FaultPlan again;
    ASSERT_TRUE(parseFaultPlan(plan.str(), again, &err)) << err;
    EXPECT_EQ(plan, again);
}

TEST(FaultPlan, ParseNormalizesEventOrder)
{
    FaultPlan plan;
    ASSERT_TRUE(parseFaultPlan(
        "tile_fail@900:tile=2;tile_fail@100:tile=5", plan));
    ASSERT_EQ(plan.events.size(), 2u);
    EXPECT_EQ(plan.events[0].at, 100u);
    EXPECT_EQ(plan.events[1].at, 900u);
}

TEST(FaultPlan, ParseRejectsMalformedText)
{
    const char *bad[] = {
        "nonsense@10:tile=1",       // unknown kind
        "tile_fail",                // missing tick
        "tile_fail@x:tile=1",       // non-numeric tick
        "tile_fail@10:bogus=1",     // unknown key
        "link_down@10:tile=1",      // missing dir
        "link_down@10:tile=1,dir=Q",// bad direction
        "link_degrade@10:tile=1,dir=E,factor=1.5", // factor >= 1
        "link_degrade@10:tile=1,dir=E,factor=0",   // factor <= 0
        "probe_drop@10:prob=2",     // prob > 1
        "tile_fail@10:tile=",       // empty value
        "chip_fail@10",             // missing chip
        "chip_fail@10:chip=-1",     // negative chip
        "chip_fail@10:chip=1,duration=5", // chip_fail spells it heal=
        "chip_fail@10:chip=1,tile=0",     // tile is not chip scope
        "tile_fail@10:tile=1,chip=0",     // chip is not tile scope
        "tile_fail@10:tile=1,dir=E",      // stray key for the kind
        "@@@",
    };
    for (const char *text : bad) {
        FaultPlan plan;
        ASSERT_TRUE(parseFaultPlan("tile_fail@1:tile=1", plan));
        std::string err;
        EXPECT_FALSE(parseFaultPlan(text, plan, &err)) << text;
        EXPECT_FALSE(err.empty()) << text;
        // Failed parses must leave the plan untouched.
        EXPECT_EQ(plan.events.size(), 1u) << text;
    }
}

TEST(FaultPlan, EmptyTextIsEmptyPlan)
{
    FaultPlan plan;
    ASSERT_TRUE(parseFaultPlan("", plan));
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.str(), "");
    // Stray separators are skippable empty events, not errors.
    ASSERT_TRUE(parseFaultPlan(";;;", plan));
    EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, RandomPlanIsDeterministicPerSeed)
{
    RandomFaultConfig cfg;
    cfg.tileFails = 2;
    cfg.linkDowns = 2;
    cfg.linkDegrades = 1;
    cfg.probeDropWindows = 1;
    cfg.storeFitWindows = 1;
    const FaultPlan a = randomFaultPlan(cfg, 7);
    const FaultPlan b = randomFaultPlan(cfg, 7);
    const FaultPlan c = randomFaultPlan(cfg, 8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a.events.size(), 7u);
    // Events land inside the configured horizon, and round-trip.
    for (const FaultEvent &e : a.events) {
        EXPECT_GE(e.at, cfg.horizon / 10);
        EXPECT_LE(e.at, cfg.horizon);
    }
    FaultPlan parsed;
    std::string err;
    ASSERT_TRUE(parseFaultPlan(a.str(), parsed, &err)) << err;
    EXPECT_EQ(a, parsed);
}

TEST(FaultPlan, ChipFailRoundTripsAndOrdersByChip)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultPlan(
        "chip_fail@500:chip=2,heal=1000;chip_fail@500:chip=0", plan,
        &err))
        << err;
    ASSERT_EQ(plan.events.size(), 2u);
    // normalize() orders equal-tick events by (kind, tile, dir,
    // chip): the chip index is the tie-break here.
    EXPECT_EQ(plan.events[0].chip, 0);
    EXPECT_EQ(plan.events[1].chip, 2);
    EXPECT_EQ(plan.events[1].duration, 1000u);
    EXPECT_EQ(plan.str(),
              "chip_fail@500:chip=0;chip_fail@500:chip=2,heal=1000");

    FaultPlan again;
    ASSERT_TRUE(parseFaultPlan(plan.str(), again, &err)) << err;
    EXPECT_EQ(plan, again);
}

TEST(FaultPlan, RandomPlanCoversChipFails)
{
    RandomFaultConfig cfg;
    cfg.tileFails = 0;
    cfg.linkDowns = 0;
    cfg.linkDegrades = 0;
    cfg.probeDropWindows = 0;
    cfg.chipFails = 4;
    cfg.podChips = 3;
    const FaultPlan plan = randomFaultPlan(cfg, 11);
    EXPECT_EQ(plan.events.size(), 4u);
    for (const FaultEvent &e : plan.events) {
        EXPECT_EQ(e.kind, FaultKind::ChipFail);
        EXPECT_GE(e.chip, 0);
        EXPECT_LT(e.chip, cfg.podChips);
    }
    FaultPlan parsed;
    std::string err;
    ASSERT_TRUE(parseFaultPlan(plan.str(), parsed, &err)) << err;
    EXPECT_EQ(plan, parsed);
}

TEST(FaultPlan, GrayKindsRoundTripThroughStr)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultPlan(
        "chip_slow@100:chip=1,factor=4.5;"
        "chip_slow@200:chip=0,factor=2,heal=5000;"
        "link_flaky@300:chip=2,prob=0.25,heal=1000;"
        "payload_corrupt@400:prob=0.05",
        plan, &err))
        << err;
    ASSERT_EQ(plan.events.size(), 4u);
    EXPECT_EQ(plan.events[0].kind, FaultKind::ChipSlow);
    EXPECT_EQ(plan.events[0].chip, 1);
    EXPECT_DOUBLE_EQ(plan.events[0].factor, 4.5);
    EXPECT_EQ(plan.events[0].duration, 0u); // permanent
    EXPECT_EQ(plan.events[1].duration, 5000u);
    EXPECT_EQ(plan.events[2].kind, FaultKind::LinkFlaky);
    EXPECT_DOUBLE_EQ(plan.events[2].factor, 0.25);
    EXPECT_EQ(plan.events[3].kind, FaultKind::PayloadCorrupt);
    EXPECT_DOUBLE_EQ(plan.events[3].factor, 0.05);

    FaultPlan again;
    ASSERT_TRUE(parseFaultPlan(plan.str(), again, &err)) << err;
    EXPECT_EQ(plan, again);

    EXPECT_TRUE(podScopeFault(FaultKind::ChipFail));
    EXPECT_TRUE(podScopeFault(FaultKind::ChipSlow));
    EXPECT_TRUE(podScopeFault(FaultKind::LinkFlaky));
    EXPECT_TRUE(podScopeFault(FaultKind::PayloadCorrupt));
    EXPECT_FALSE(podScopeFault(FaultKind::TileFail));
    EXPECT_FALSE(podScopeFault(FaultKind::ProbeDrop));
}

TEST(FaultPlan, GrayKindsRejectBadRanges)
{
    const char *bad[] = {
        "chip_slow@10:chip=1",              // missing factor
        "chip_slow@10:factor=2",            // missing chip
        "chip_slow@10:chip=1,factor=1",     // factor must be > 1
        "chip_slow@10:chip=1,factor=0.5",   // dilation, not speedup
        "chip_slow@10:chip=1,factor=2,prob=0.5", // stray key
        "link_flaky@10:chip=1",             // missing prob
        "link_flaky@10:prob=0.5",           // missing chip
        "link_flaky@10:chip=1,prob=0",      // prob in (0,1) open
        "link_flaky@10:chip=1,prob=1",      // p=1 never delivers
        "payload_corrupt@10",               // missing prob
        "payload_corrupt@10:prob=1",        // p=1 never delivers
        "payload_corrupt@10:prob=0.5,chip=1", // fabric scope
        "chip_slow@10:chip=1,factor=2,duration=5", // pod heal=
    };
    for (const char *text : bad) {
        FaultPlan plan;
        std::string err;
        EXPECT_FALSE(parseFaultPlan(text, plan, &err)) << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(FaultPlan, RandomPlanCoversGrayKinds)
{
    RandomFaultConfig cfg;
    cfg.tileFails = 0;
    cfg.linkDowns = 0;
    cfg.linkDegrades = 0;
    cfg.probeDropWindows = 0;
    cfg.chipSlows = 3;
    cfg.linkFlakies = 2;
    cfg.payloadCorrupts = 2;
    cfg.podChips = 4;
    cfg.transientFraction = 1.0; // force bounded windows
    const FaultPlan plan = randomFaultPlan(cfg, 13);
    EXPECT_EQ(plan.events.size(), 7u);
    int slows = 0, flakies = 0, corrupts = 0;
    for (const FaultEvent &e : plan.events) {
        switch (e.kind) {
          case FaultKind::ChipSlow:
            ++slows;
            EXPECT_GT(e.factor, 1.0);
            EXPECT_GE(e.chip, 0);
            EXPECT_LT(e.chip, cfg.podChips);
            break;
          case FaultKind::LinkFlaky:
            ++flakies;
            EXPECT_GT(e.factor, 0.0);
            EXPECT_LT(e.factor, 1.0);
            EXPECT_GE(e.chip, 0);
            EXPECT_LT(e.chip, cfg.podChips);
            break;
          case FaultKind::PayloadCorrupt:
            ++corrupts;
            EXPECT_GT(e.factor, 0.0);
            EXPECT_LT(e.factor, 1.0);
            break;
          default:
            ADD_FAILURE() << "unexpected kind in gray plan";
        }
        EXPECT_GT(e.duration, 0u); // all transient windows
    }
    EXPECT_EQ(slows, 3);
    EXPECT_EQ(flakies, 2);
    EXPECT_EQ(corrupts, 2);
    FaultPlan parsed;
    std::string err;
    ASSERT_TRUE(parseFaultPlan(plan.str(), parsed, &err)) << err;
    EXPECT_EQ(plan, parsed);
}

// ------------------------------------------------------ Chip faults

TEST(ChipFault, HealthyMaskTracksFailuresAndRecoveries)
{
    arch::Chip chip{arch::HwConfig{}};
    const int tiles = chip.config().tiles();
    EXPECT_FALSE(chip.anyTileFailed());
    EXPECT_TRUE(chip.tileHealthy(0));
    EXPECT_EQ(static_cast<int>(chip.healthyTiles().size()), tiles);

    chip.failTile(5);
    chip.failTile(9);
    chip.failTile(9); // idempotent
    EXPECT_TRUE(chip.anyTileFailed());
    EXPECT_EQ(chip.failedTileCount(), 2);
    EXPECT_FALSE(chip.tileHealthy(5));
    EXPECT_TRUE(chip.tileHealthy(6));
    const auto healthy = chip.healthyTiles();
    EXPECT_EQ(static_cast<int>(healthy.size()), tiles - 2);
    EXPECT_TRUE(std::is_sorted(healthy.begin(), healthy.end()));
    EXPECT_FALSE(std::count(healthy.begin(), healthy.end(), 5));

    chip.recoverTile(5);
    chip.recoverTile(9);
    EXPECT_FALSE(chip.anyTileFailed());
    EXPECT_TRUE(chip.tileHealthy(5));
}

// ------------------------------------------------------- NoC faults

TEST(NocFault, LinkDownForcesDetourThatAvoidsTheLink)
{
    const arch::HwConfig hw;
    arch::Noc noc(hw);
    const TileId src = 0, dst = 3;
    const auto healthyRoute = noc.route(src, dst);
    EXPECT_EQ(static_cast<int>(healthyRoute.size()),
              noc.hops(src, dst));
    EXPECT_EQ(noc.detourRoutes(), 0u);

    // Take down the first link of the X-Y path (east out of tile 0).
    noc.setLinkDown(src, arch::kLinkEast, true);
    const auto detour = noc.route(src, dst);
    EXPECT_GE(noc.detourRoutes(), 1u);
    EXPECT_FALSE(detour.empty());
    EXPECT_NE(detour, healthyRoute);
    for (std::size_t link : detour)
        EXPECT_NE(link, healthyRoute.front()) << "route uses a dead link";

    // Transfers keep flowing over the detour; byte-hops bookkeeping
    // matches the route the message actually took.
    const Bytes before = noc.byteHopsServed();
    const auto t = noc.transfer(0, src, dst, 4096);
    EXPECT_GT(t.end, t.start);
    EXPECT_EQ(t.hops, static_cast<int>(detour.size()));
    EXPECT_EQ(noc.byteHopsServed() - before, t.byteHops);
    EXPECT_EQ(t.byteHops, 4096u * detour.size());

    // Bringing the link back restores the X-Y fast path.
    noc.setLinkDown(src, arch::kLinkEast, false);
    EXPECT_EQ(noc.route(src, dst), healthyRoute);
}

TEST(NocFault, IsolatedTileFallsBackAndCounts)
{
    const arch::HwConfig hw;
    arch::Noc noc(hw);
    // Sever every link out of tile 0: no healthy route can exist.
    for (int dir = 0; dir < 4; ++dir)
        noc.setLinkDown(0, dir, true);
    // Its torus neighbours' inbound links too (links are directed).
    const TileId east = 1;
    const TileId west = hw.gridCols - 1;
    const TileId south = hw.gridCols;
    const TileId north = (hw.gridRows - 1) * hw.gridCols;
    noc.setLinkDown(east, arch::kLinkWest, true);
    noc.setLinkDown(west, arch::kLinkEast, true);
    noc.setLinkDown(south, arch::kLinkNorth, true);
    noc.setLinkDown(north, arch::kLinkSouth, true);

    const auto r = noc.route(0, 5);
    EXPECT_FALSE(r.empty()) << "unroutable pairs fall back to X-Y";
    EXPECT_GE(noc.unroutablePaths(), 1u);
}

TEST(NocFault, DegradedLinkStretchesTransfers)
{
    const arch::HwConfig hw;
    arch::Noc full(hw), slow(hw);
    slow.setLinkBandwidthFactor(0, arch::kLinkEast, 0.25);
    EXPECT_EQ(slow.degradedLinks(), 1);
    const auto a = full.transfer(0, 0, 1, 1 << 20);
    const auto b = slow.transfer(0, 0, 1, 1 << 20);
    EXPECT_GT(b.end - b.start, a.end - a.start);
    // Restoring full bandwidth restores the exact healthy timing.
    arch::Noc restored(hw);
    restored.setLinkBandwidthFactor(0, arch::kLinkEast, 0.25);
    restored.setLinkBandwidthFactor(0, arch::kLinkEast, 1.0);
    EXPECT_EQ(restored.degradedLinks(), 0);
    const auto c = restored.transfer(0, 0, 1, 1 << 20);
    EXPECT_EQ(c.end - c.start, a.end - a.start);
}

TEST(NocFault, ProbeDropsRetryDeterministicallyAndGiveUp)
{
    const arch::HwConfig hw;
    const Tick base = arch::Noc(hw).probeAckLatency(0, 5);

    // Certain drops: every round trip fails, the retry budget runs
    // out, and the give-up penalty lands on top of the charged
    // timeouts. Two same-seeded NoCs agree exactly.
    arch::Noc a(hw), b(hw);
    a.setProbeDropWindow(1.0, 1'000'000'000, 42);
    b.setProbeDropWindow(1.0, 1'000'000'000, 42);
    const Tick ta = a.probeAck(0, 0, 5);
    const Tick tb = b.probeAck(0, 0, 5);
    EXPECT_EQ(ta, tb);
    EXPECT_GT(ta, base);
    EXPECT_EQ(a.probeGiveUps(), 1u);
    EXPECT_EQ(a.probeDrops(),
              static_cast<std::uint64_t>(hw.probeMaxRetries) + 1);
    EXPECT_EQ(a.probeRetries(),
              static_cast<std::uint64_t>(hw.probeMaxRetries));

    // Outside the window the fast path returns the healthy latency.
    arch::Noc c(hw);
    c.setProbeDropWindow(1.0, 10, 42);
    EXPECT_EQ(c.probeAck(10, 0, 5), base);
    EXPECT_EQ(c.probeDrops(), 0u);
}

// ---------------------------------------------------- FaultInjector

TEST(FaultInjector, AppliesStrikesAndHealsOnTheClock)
{
    FaultPlan plan;
    ASSERT_TRUE(parseFaultPlan(
        "tile_fail@100:tile=3,duration=200;"
        "link_down@150:tile=0,dir=E;"
        "store_fit_fail@400:duration=100",
        plan));
    FaultInjector inj(plan, 1);
    arch::Chip chip{arch::HwConfig{}};

    EXPECT_FALSE(inj.advanceTo(50, chip));
    EXPECT_TRUE(chip.tileHealthy(3));

    // Strike: the healthy set changed -> fail-over signal.
    EXPECT_TRUE(inj.advanceTo(100, chip));
    EXPECT_FALSE(chip.tileHealthy(3));
    EXPECT_FALSE(chip.noc().linkDown(0, arch::kLinkEast));

    // Link faults do not change the healthy-tile set.
    EXPECT_FALSE(inj.advanceTo(200, chip));
    EXPECT_TRUE(chip.noc().linkDown(0, arch::kLinkEast));

    // Heal: tile 3 recovers at 300 -> another fail-over signal.
    EXPECT_TRUE(inj.advanceTo(350, chip));
    EXPECT_TRUE(chip.tileHealthy(3));

    EXPECT_FALSE(inj.storeFitFailActive(350));
    EXPECT_FALSE(inj.advanceTo(450, chip));
    EXPECT_TRUE(inj.storeFitFailActive(450));
    EXPECT_FALSE(inj.storeFitFailActive(500));
    EXPECT_FALSE(inj.advanceTo(600, chip)); // past the heal entry
    EXPECT_TRUE(inj.exhausted());

    const FaultStats s = inj.stats(chip);
    EXPECT_EQ(s.tileFailEvents, 1u);
    EXPECT_EQ(s.tileRecoveries, 1u);
    EXPECT_EQ(s.linkDownEvents, 1u);
    EXPECT_EQ(s.storeFitWindows, 1u);
    EXPECT_EQ(s.failedTiles, 0);
    EXPECT_EQ(s.downLinks, 1);
}

// ------------------------------------------- degraded scheduling

TEST(SchedulerFault, DegradedBuildLandsOnSurvivorsOnly)
{
    const auto bundle = models::buildSkipNet(16);
    const graph::DynGraph dg = graph::parseModel(bundle.graph);
    const arch::HwConfig hw;
    costmodel::Mapper mapper(hw.tech);
    core::Scheduler sched(dg, hw, mapper, core::SchedulerConfig{});

    const core::Schedule full = sched.build({}, {}, nullptr);

    std::vector<TileId> healthy;
    for (int t = 0; t < hw.tiles(); ++t)
        if (t % 7 != 0) // knock out every 7th tile
            healthy.push_back(static_cast<TileId>(t));
    sched.setHealthyTiles(healthy);
    EXPECT_EQ(sched.activeTileCount(),
              static_cast<int>(healthy.size()));

    const core::Schedule degraded = sched.build({}, {}, nullptr);
    const std::set<TileId> live(healthy.begin(), healthy.end());
    for (const auto &seg : degraded.segments)
        for (const auto &st : seg->stages) {
            EXPECT_FALSE(st.tiles.empty());
            for (TileId t : st.tiles)
                EXPECT_TRUE(live.count(t)) << "stage uses dead tile "
                                           << t;
        }

    // Clearing the mask restores the exact full-grid build.
    sched.setHealthyTiles({});
    EXPECT_EQ(sched.activeTileCount(), hw.tiles());
    const core::Schedule again = sched.build({}, {}, nullptr);
    ASSERT_EQ(again.segments.size(), full.segments.size());
    for (std::size_t i = 0; i < again.segments.size(); ++i) {
        ASSERT_EQ(again.segments[i]->stages.size(),
                  full.segments[i]->stages.size());
        for (std::size_t j = 0; j < again.segments[i]->stages.size();
             ++j)
            EXPECT_EQ(again.segments[i]->stages[j].tiles,
                      full.segments[i]->stages[j].tiles);
    }
}

// ------------------------------------------------- system-level runs

core::RunReport
faultedRun(baselines::Design design, const std::string &plan_text)
{
    const auto bundle = models::buildSkipNet(16);
    const graph::DynGraph dg = graph::parseModel(bundle.graph);
    trace::TraceConfig tc = bundle.traceConfig;
    tc.batchSize = 16;
    core::RunOptions opts;
    opts.numBatches = 60;
    opts.profileBatches = 10;
    opts.seed = 3;
    core::System sys(dg, tc, arch::HwConfig{},
                     baselines::schedulerConfig(design),
                     baselines::execPolicy(design), opts,
                     baselines::designName(design));
    kernels::KernelStoreCache stores;
    sys.setSharedStoreCache(&stores);
    if (!plan_text.empty()) {
        FaultPlan plan;
        EXPECT_TRUE(parseFaultPlan(plan_text, plan));
        sys.setFaultPlan(plan, 11);
    }
    return sys.run();
}

TEST(SystemFault, StaticBaselineEatsDegradedExecution)
{
    // The worst-case static design cannot fail over, so a dead tile
    // slows every batch that lands on its lockstep group.
    const auto clean = faultedRun(baselines::Design::MTile, "");
    const auto faulted =
        faultedRun(baselines::Design::MTile, "tile_fail@0:tile=0");
    EXPECT_EQ(faulted.failovers, 0);
    EXPECT_EQ(faulted.fault.tileFailEvents, 1u);
    EXPECT_EQ(faulted.fault.failedTiles, 1);
    EXPECT_GT(faulted.cycles, clean.cycles);
}

TEST(SystemFault, AdaptiveFailsOverAndRecoups)
{
    const auto faulted =
        faultedRun(baselines::Design::Adyna, "tile_fail@0:tile=0");
    EXPECT_EQ(faulted.failovers, 1);
    EXPECT_EQ(faulted.fault.failedTiles, 1);
    // The degraded re-schedule lands on survivors, so the run stays
    // within a modest factor of the clean one (vs the unbounded
    // lockstep penalty of serving dead tiles forever).
    const auto clean = faultedRun(baselines::Design::Adyna, "");
    EXPECT_LT(faulted.cycles, clean.cycles * 2);
}

TEST(SystemFault, EmptyPlanIsByteIdentical)
{
    const auto a = faultedRun(baselines::Design::Adyna, "");
    core::RunReport b;
    {
        const auto bundle = models::buildSkipNet(16);
        const graph::DynGraph dg = graph::parseModel(bundle.graph);
        trace::TraceConfig tc = bundle.traceConfig;
        tc.batchSize = 16;
        core::RunOptions opts;
        opts.numBatches = 60;
        opts.profileBatches = 10;
        opts.seed = 3;
        core::System sys(
            dg, tc, arch::HwConfig{},
            baselines::schedulerConfig(baselines::Design::Adyna),
            baselines::execPolicy(baselines::Design::Adyna), opts,
            baselines::designName(baselines::Design::Adyna));
        kernels::KernelStoreCache stores;
        sys.setSharedStoreCache(&stores);
        sys.setFaultPlan(FaultPlan{}, 99); // empty plan, odd seed
        b = sys.run();
    }
    EXPECT_EQ(core::toJson(a), core::toJson(b));
    EXPECT_EQ(core::toCsvRow(a), core::toCsvRow(b));
    EXPECT_EQ(core::faultStatsJson(a), core::faultStatsJson(b));
}

// ---------------------------------------------------- serve fail-over

struct ServeParams
{
    std::string planText;
    bool failover = true;
    bool admission = false;
    double ratePerSec = 5e5;
    Cycles watchdogBudget = 0;
    /** Trace drift override; negative keeps the model bundle's own
     * dynamism (drifting request mixes load more tile groups). */
    double driftStrength = 0.0;
    double deadlineMs = 1.0;
    int numRequests = 400;
    int windowRequests = 64;
};

serve::ServeReport
faultServe(const ServeParams &p)
{
    models::ModelBundle bundle = models::buildByName("skipnet", 8);
    const graph::DynGraph dg = graph::parseModel(bundle.graph);
    trace::TraceConfig tc = bundle.traceConfig;
    tc.batchSize = 8;
    if (p.driftStrength >= 0.0) {
        tc.driftStrength = p.driftStrength;
        tc.driftPeriod = 700;
    }

    serve::ServeConfig sc;
    sc.arrival.ratePerSec = p.ratePerSec;
    sc.batching.maxBatch = 8;
    sc.batching.maxWaitCycles = 20000;
    sc.slo.deadlineMs = p.deadlineMs;
    sc.drift.windowRequests = p.windowRequests;
    sc.numRequests = p.numRequests;
    sc.profileBatches = 8;
    sc.seed = 5;
    if (!p.planText.empty()) {
        FaultPlan plan;
        EXPECT_TRUE(parseFaultPlan(p.planText, plan));
        sc.faultPlan = plan;
    }
    sc.failover = p.failover;
    sc.admissionControl = p.admission;
    sc.rescheduleBudgetCycles = p.watchdogBudget;

    serve::ServeRuntime rt(
        dg, tc, arch::HwConfig{},
        baselines::schedulerConfig(baselines::Design::Adyna),
        baselines::execPolicy(baselines::Design::Adyna), sc,
        "skipnet");
    kernels::KernelStoreCache stores;
    rt.setSharedStoreCache(&stores);
    return rt.run();
}

TEST(ServeFault, FailoverReschedulesOntoSurvivors)
{
    // Tile 100 sits in a loaded lockstep group of this workload's
    // schedule, so the static response degrades hard while the
    // fail-over re-schedule recoups on the 143 survivors.
    ServeParams p;
    p.planText = "tile_fail@0:tile=100";
    p.ratePerSec = 2e5;
    p.deadlineMs = 8.0;
    p.driftStrength = -1.0; // the bundle's own drifting request mix

    const auto adaptive = faultServe(p);
    EXPECT_EQ(adaptive.failovers, 1);
    EXPECT_EQ(adaptive.failedTiles, 1);
    EXPECT_TRUE(adaptive.faultActive);
    EXPECT_EQ(adaptive.requests, 400u);

    p.failover = false;
    const auto fixed = faultServe(p);
    EXPECT_EQ(fixed.failovers, 0);
    EXPECT_EQ(fixed.failedTiles, 1);
    EXPECT_LT(adaptive.p99Ms, fixed.p99Ms);
    EXPECT_GT(adaptive.goodputRps, fixed.goodputRps);
    EXPECT_GT(adaptive.sloAttainment, fixed.sloAttainment);
}

TEST(ServeFault, AdmissionControlShedsUnderOverload)
{
    // Offered load far past capacity with a tight deadline: without
    // admission control the queue grows without bound; with it the
    // overflow is shed at arrival and the served stream stays live.
    ServeParams p;
    p.admission = true;
    p.ratePerSec = 5e6;
    const auto shed = faultServe(p);
    EXPECT_TRUE(shed.faultActive);
    EXPECT_GT(shed.shedRequests, 0u);
    EXPECT_EQ(shed.requests + shed.shedRequests, 400u);
    EXPECT_GT(shed.goodputRps, 0.0);

    p.admission = false;
    const auto drop = faultServe(p);
    EXPECT_EQ(drop.shedRequests, 0u);
    // Shedding keeps tail latency of the admitted stream bounded.
    EXPECT_LT(shed.p99Ms, drop.p99Ms);
}

TEST(ServeFault, WatchdogAbandonsOverBudgetRebuilds)
{
    // Strong distribution drift forces re-schedules; guard that
    // first, then cap the budget so every rebuild is abandoned.
    ServeParams p;
    p.driftStrength = 0.9;
    p.numRequests = 1600;
    p.windowRequests = 100;
    p.ratePerSec = 2e5;
    const auto open = faultServe(p);
    ASSERT_GT(open.reschedules, 0);
    EXPECT_EQ(open.watchdogFallbacks, 0);

    // A 1-cycle budget can never admit a rebuild: every drift
    // trigger falls back to the last-known-good schedule.
    p.watchdogBudget = 1;
    const auto capped = faultServe(p);
    EXPECT_TRUE(capped.faultActive);
    EXPECT_EQ(capped.reschedules, 0);
    EXPECT_GT(capped.watchdogFallbacks, 0);
}

TEST(ServeFault, EmptyPlanKeepsServeReportBytes)
{
    // Neither the fault knobs at their defaults nor an explicitly
    // empty plan may perturb a single byte of the report.
    ServeParams p;
    const auto plain = faultServe(p);
    p.failover = false;
    const auto fixed = faultServe(p);
    EXPECT_FALSE(plain.faultActive);
    EXPECT_EQ(serve::toJson(plain), serve::toJson(fixed));
    const std::string json = serve::toJson(plain);
    EXPECT_EQ(json.find("shed_requests"), std::string::npos);
    EXPECT_EQ(json.find("failovers"), std::string::npos);
}

} // namespace
