/**
 * @file
 * Unit tests for the multi-tenant serving layer: TilePartitioner
 * geometry (disjoint full-grid cover, per-tenant floors, share
 * proportionality, determinism, mode behaviour), boundary-link
 * enumeration and interference degrades, the 1-tenant byte-identity
 * gate against serve::ServeRuntime, multi-tenant run determinism,
 * elastic repartitioning, and partition-local fail-over.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "arch/noc.hh"
#include "baselines/designs.hh"
#include "fault/fault.hh"
#include "graph/parser.hh"
#include "kernels/store_cache.hh"
#include "models/models.hh"
#include "mtenant/partition.hh"
#include "mtenant/runtime.hh"
#include "serve/server.hh"

namespace {

using namespace adyna;
using namespace adyna::mtenant;

// ---------------------------------------------------- TilePartitioner

// Every partition mode must yield regions that cover the grid and --
// outside SharedGrid -- never overlap.
void
expectDisjointCover(const arch::HwConfig &hw,
                    const std::vector<TileRegion> &regions)
{
    std::set<TileId> seen;
    for (const TileRegion &r : regions) {
        for (TileId t : r.tiles(hw)) {
            EXPECT_TRUE(seen.insert(t).second)
                << "tile " << t << " assigned twice";
        }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), hw.tiles());
}

TEST(Partitioner, DisjointCoverAndFloorsAcrossShareMixes)
{
    const arch::HwConfig hw;
    PartitionPolicy pp;
    TilePartitioner part(hw, pp);
    const std::vector<std::vector<double>> mixes = {
        {1.0},
        {1.0, 1.0},
        {4.0, 1.0},
        {8.0, 2.0, 1.0},
        {1.0, 1.0, 1.0, 1.0},
        {100.0, 1.0, 1.0},
    };
    for (const auto &shares : mixes) {
        const auto regions = part.partition(shares);
        ASSERT_EQ(regions.size(), shares.size());
        expectDisjointCover(hw, regions);
        for (const TileRegion &r : regions)
            EXPECT_GE(r.tileCount(), pp.minTilesPerTenant);
    }
}

TEST(Partitioner, SharesDriveRegionSizes)
{
    const arch::HwConfig hw;
    TilePartitioner part(hw, {});
    const auto regions = part.partition({3.0, 1.0});
    ASSERT_EQ(regions.size(), 2u);
    // A 3:1 share split on a 144-tile grid: the heavy tenant gets
    // roughly three quarters of the tiles (guillotine rounding may
    // shift a row or column).
    EXPECT_GT(regions[0].tileCount(), regions[1].tileCount());
    EXPECT_NEAR(regions[0].tileCount(), hw.tiles() * 3 / 4,
                hw.gridRows);
}

TEST(Partitioner, DeterministicForEqualInputs)
{
    const arch::HwConfig hw;
    TilePartitioner part(hw, {});
    const std::vector<double> shares = {2.0, 1.0, 1.5};
    const auto a = part.partition(shares);
    const auto b = part.partition(shares);
    EXPECT_EQ(a, b);
}

TEST(Partitioner, SingleTenantGetsFullGrid)
{
    const arch::HwConfig hw;
    TilePartitioner part(hw, {});
    const auto regions = part.partition({1.0});
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].tileCount(), hw.tiles());
    EXPECT_TRUE(part.boundaryLinks(regions).empty());
}

TEST(Partitioner, EvenSplitIgnoresShares)
{
    const arch::HwConfig hw;
    PartitionPolicy pp;
    pp.kind = PartitionKind::EvenSplit;
    TilePartitioner part(hw, pp);
    const auto skewed = part.partition({100.0, 1.0, 1.0});
    const auto flat = part.partition({1.0, 1.0, 1.0});
    EXPECT_EQ(skewed, flat);
    expectDisjointCover(hw, skewed);
    int lo = hw.tiles(), hi = 0;
    for (const TileRegion &r : skewed) {
        lo = std::min(lo, r.tileCount());
        hi = std::max(hi, r.tileCount());
    }
    // Near-equal sizes: no region more than one grid edge away from
    // another.
    EXPECT_LE(hi - lo, std::max(hw.gridRows, hw.gridCols));
}

TEST(Partitioner, SharedGridAliasesFullGrid)
{
    const arch::HwConfig hw;
    PartitionPolicy pp;
    pp.kind = PartitionKind::SharedGrid;
    TilePartitioner part(hw, pp);
    const auto regions = part.partition({3.0, 1.0});
    ASSERT_EQ(regions.size(), 2u);
    for (const TileRegion &r : regions)
        EXPECT_EQ(r.tileCount(), hw.tiles());
    EXPECT_TRUE(part.boundaryLinks(regions).empty());
    EXPECT_TRUE(
        part.interferenceDegrades(regions, {3.0, 1.0}).empty());
}

TEST(Partitioner, BoundaryLinksCrossRegionsAndAreSorted)
{
    const arch::HwConfig hw;
    TilePartitioner part(hw, {});
    const std::vector<double> shares = {2.0, 1.0, 1.0};
    const auto regions = part.partition(shares);
    const auto links = part.boundaryLinks(regions);
    ASSERT_FALSE(links.empty());
    for (std::size_t i = 0; i < links.size(); ++i) {
        const BoundaryLink &l = links[i];
        // The link really crosses a partition boundary...
        EXPECT_NE(l.fromRegion, l.toRegion);
        EXPECT_TRUE(regions[static_cast<std::size_t>(l.fromRegion)]
                        .contains(hw, l.tile));
        const TileId nbr = arch::torusNeighbor(hw, l.tile, l.dir);
        EXPECT_TRUE(regions[static_cast<std::size_t>(l.toRegion)]
                        .contains(hw, nbr));
        // ...and the list is ascending by (tile, dir).
        if (i > 0) {
            const BoundaryLink &p = links[i - 1];
            EXPECT_TRUE(p.tile < l.tile ||
                        (p.tile == l.tile && p.dir < l.dir));
        }
    }
}

TEST(Partitioner, InterferenceDegradesBoundedAndGatedByAlpha)
{
    const arch::HwConfig hw;
    PartitionPolicy pp;
    pp.interferenceAlpha = 0.5;
    TilePartitioner part(hw, pp);
    const std::vector<double> shares = {2.0, 1.0};
    const auto regions = part.partition(shares);
    const auto degrades = part.interferenceDegrades(regions, shares);
    ASSERT_FALSE(degrades.empty());
    std::set<std::pair<TileId, int>> keys;
    for (const InterferenceDegrade &d : degrades) {
        EXPECT_GT(d.factor, 0.0);
        EXPECT_LT(d.factor, 1.0); // alpha > 0 => a real degrade
        EXPECT_TRUE(keys.insert({d.tile, d.dir}).second)
            << "duplicate (tile, dir)";
    }

    PartitionPolicy off = pp;
    off.interferenceAlpha = 0.0;
    TilePartitioner quiet(hw, off);
    EXPECT_TRUE(
        quiet.interferenceDegrades(regions, shares).empty());
}

// ------------------------------------------------------ MTenantRuntime

struct TestWorkload
{
    models::ModelBundle bundle;
    graph::DynGraph dg;
    trace::TraceConfig tc;

    explicit TestWorkload(const char *name, int maxBatch)
        : bundle(models::buildByName(name, maxBatch)),
          dg(graph::parseModel(bundle.graph)), tc(bundle.traceConfig)
    {
        tc.batchSize = maxBatch;
        tc.driftStrength = 0.0;
    }
};

serve::ServeConfig
smokeServeConfig(std::uint64_t seed, unsigned requests)
{
    serve::ServeConfig sc;
    sc.arrival.ratePerSec = 5e5;
    sc.batching.maxBatch = 8;
    sc.batching.maxWaitCycles = 20000;
    sc.slo.deadlineMs = 1.0;
    sc.drift.windowRequests = 64;
    sc.numRequests = requests;
    sc.profileBatches = 8;
    sc.seed = seed;
    return sc;
}

TEST(MTenantRuntime, SingleTenantMatchesServeRuntimeByteForByte)
{
    TestWorkload w("skipnet", 8);
    const arch::HwConfig hw;
    const auto schedCfg =
        baselines::schedulerConfig(baselines::Design::Adyna);
    const auto policy = baselines::execPolicy(baselines::Design::Adyna);
    const serve::ServeConfig sc = smokeServeConfig(7, 200);

    serve::ServeRuntime direct(w.dg, w.tc, hw, schedCfg, policy, sc,
                               "skipnet");
    kernels::KernelStoreCache directStores;
    direct.setSharedStoreCache(&directStores);
    const std::string want = serve::toJson(direct.run());

    MTenantConfig mc;
    serve::TenantSpec ts;
    ts.id = "solo";
    ts.serve = sc;
    mc.tenants.push_back(ts);
    MTenantRuntime rt({{&w.dg, w.tc, "skipnet"}}, hw, schedCfg,
                      policy, mc);
    kernels::KernelStoreCache viaStores;
    rt.setSharedStoreCache(&viaStores);
    const MTenantReport mr = rt.run();

    ASSERT_EQ(mr.tenants.size(), 1u);
    EXPECT_EQ(serve::toJson(mr.tenants[0].serve), want);
    EXPECT_EQ(mr.tenants[0].tiles, hw.tiles());
    EXPECT_EQ(mr.repartitions, 0);
    EXPECT_EQ(mr.tenantSwitches, 0);
}

MTenantReport
twoTenantRun(PartitionKind kind, bool elastic, std::uint64_t seed,
             const std::string &faultPlan = "")
{
    static TestWorkload wa("skipnet", 8);
    static TestWorkload wb("pabee", 8);
    const arch::HwConfig hw;

    MTenantConfig mc;
    mc.partition.kind = kind;
    mc.repartition.elastic = elastic;
    if (!faultPlan.empty())
        mc.faultPlan = fault::parseFaultPlanOrDie(faultPlan);

    serve::TenantSpec a;
    a.id = "skipnet-0";
    a.cls = serve::SloClass::LatencyCritical;
    a.serve = smokeServeConfig(seed, 150);
    mc.tenants.push_back(a);

    serve::TenantSpec b;
    b.id = "pabee-1";
    b.cls = serve::SloClass::BestEffort;
    b.serve = smokeServeConfig(seed + 1, 150);
    b.serve.arrival.ratePerSec = 2e5;
    b.serve.slo.deadlineMs = 4.0;
    mc.tenants.push_back(b);

    MTenantRuntime rt(
        {{&wa.dg, wa.tc, "skipnet"}, {&wb.dg, wb.tc, "pabee"}}, hw,
        baselines::schedulerConfig(baselines::Design::Adyna),
        baselines::execPolicy(baselines::Design::Adyna), mc);
    kernels::KernelStoreCache stores;
    rt.setSharedStoreCache(&stores);
    return rt.run();
}

TEST(MTenantRuntime, TwoTenantRunIsDeterministic)
{
    const MTenantReport a =
        twoTenantRun(PartitionKind::IsolationAware, true, 3);
    const MTenantReport b =
        twoTenantRun(PartitionKind::IsolationAware, true, 3);
    EXPECT_EQ(toJson(a), toJson(b));

    ASSERT_EQ(a.tenants.size(), 2u);
    EXPECT_EQ(a.mode, "isolation-aware");
    EXPECT_GT(a.interferenceLinks, 0);
    for (const TenantResult &tr : a.tenants) {
        EXPECT_EQ(tr.serve.requests, 150u);
        EXPECT_GT(tr.serve.p99Ms, 0.0);
        EXPECT_GT(tr.tiles, 0);
        EXPECT_LT(tr.tiles, arch::HwConfig{}.tiles());
    }
    EXPECT_GT(a.aggregateGoodputRps, 0.0);
    EXPECT_GE(a.worstP99Ms, a.tenants[0].serve.p99Ms);
    EXPECT_GE(a.worstP99Ms, a.tenants[1].serve.p99Ms);
}

TEST(MTenantRuntime, SharedGridPaysContextSwitches)
{
    const MTenantReport shared =
        twoTenantRun(PartitionKind::SharedGrid, false, 3);
    const MTenantReport iso =
        twoTenantRun(PartitionKind::IsolationAware, false, 3);
    EXPECT_EQ(shared.mode, "shared-grid");
    // Every tenant schedules over the whole grid, so alternating
    // dispatches keep re-streaming weights; pinned disjoint regions
    // never pay one (elastic repartitioning is off).
    EXPECT_GT(shared.tenantSwitches, 0);
    EXPECT_EQ(iso.tenantSwitches, 0);
    EXPECT_EQ(shared.interferenceLinks, 0);
}

TEST(MTenantRuntime, FrozenPartitionNeverRepartitions)
{
    const MTenantReport r =
        twoTenantRun(PartitionKind::EvenSplit, true, 5);
    // EvenSplit is always frozen, elastic flag or not.
    EXPECT_EQ(r.mode, "even-split");
    EXPECT_EQ(r.repartitions, 0);
}

TEST(MTenantRuntime, FaultInOneRegionRepairsOnlyStruckTenants)
{
    // Strike tile 0 (top-left corner: inside exactly one region)
    // mid-run, recover it later. Only the tenant owning that corner
    // may be rebuilt.
    const MTenantReport r = twoTenantRun(
        PartitionKind::IsolationAware, false, 11,
        "tile_fail@2000000:tile=0,duration=3000000");
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_GT(r.failoverRepairs, 0);
    const int failovers0 = r.tenants[0].serve.failovers;
    const int failovers1 = r.tenants[1].serve.failovers;
    // Tile 0 lives in exactly one rectangle, so exactly one tenant
    // sees fail-over repairs.
    EXPECT_TRUE((failovers0 > 0) != (failovers1 > 0))
        << "failovers: " << failovers0 << " / " << failovers1;
    EXPECT_EQ(r.failoverRepairs, failovers0 + failovers1);
}

} // namespace
