/**
 * @file
 * Unit tests for the kernel-store cache: key semantics (what shares
 * an entry and what must not), hit/miss accounting, invalidation via
 * clear(), equality with the compile-from-scratch path, and safe
 * concurrent population through a thread pool (the `concurrency`
 * label marks these worth re-running under -DADYNA_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "costmodel/mapper.hh"
#include "kernels/store_cache.hh"

namespace {

using namespace adyna;
using namespace adyna::costmodel;
using namespace adyna::kernels;
using namespace adyna::graph;

OpNode
matmulOp(std::int64_t n, std::int64_t k, std::int64_t c)
{
    OpNode op;
    op.kind = OpKind::MatMul;
    op.dims = LoopDims::matmul(n, k, c);
    return op;
}

/** Byte-level store equality: same values, same encoded images. */
bool
sameStore(const KernelStore &a, const KernelStore &b)
{
    if (a.kernels().size() != b.kernels().size())
        return false;
    for (std::size_t i = 0; i < a.kernels().size(); ++i) {
        if (a.kernels()[i].value != b.kernels()[i].value ||
            a.kernels()[i].image != b.kernels()[i].image)
            return false;
    }
    return true;
}

const std::vector<std::int64_t> kValues{16, 48, 96, 128};

} // namespace

TEST(StoreCache, HitReturnsTheCachedStore)
{
    TechParams tech;
    Mapper mapper(tech);
    KernelStoreCache cache;
    const OpNode op = matmulOp(128, 512, 256);

    const auto first =
        cache.getOrCompile(op, kValues, 6, mapper, tech);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    const auto second =
        cache.getOrCompile(op, kValues, 6, mapper, tech);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(first.get(), second.get());

    // And the cached store matches a from-scratch compile.
    Mapper fresh(tech);
    EXPECT_TRUE(sameStore(*first,
                          compileStore(op, kValues, 6, fresh, tech)));
}

TEST(StoreCache, BatchExtentSharesTheEntry)
{
    // The sampled values supersede the batch (N) extent, so ops that
    // differ only in N share one compiled store -- the same
    // normalization the Mapper memo applies.
    TechParams tech;
    Mapper mapper(tech);
    KernelStoreCache cache;

    (void)cache.getOrCompile(matmulOp(64, 512, 256), kValues, 6,
                             mapper, tech);
    (void)cache.getOrCompile(matmulOp(256, 512, 256), kValues, 6,
                             mapper, tech);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(StoreCache, DistinctKeysDoNotCollide)
{
    TechParams tech;
    Mapper mapper(tech);
    KernelStoreCache cache;
    const OpNode op = matmulOp(128, 512, 256);

    (void)cache.getOrCompile(op, kValues, 6, mapper, tech);

    // Different tile count, different value set, different K extent,
    // different stride, different dtype: all separate entries.
    (void)cache.getOrCompile(op, kValues, 8, mapper, tech);
    (void)cache.getOrCompile(op, {16, 48}, 6, mapper, tech);
    (void)cache.getOrCompile(matmulOp(128, 768, 256), kValues, 6,
                             mapper, tech);
    OpNode strided = op;
    strided.stride = 2;
    (void)cache.getOrCompile(strided, kValues, 6, mapper, tech);
    OpNode fp32 = op;
    fp32.dtypeBytes = 4;
    (void)cache.getOrCompile(fp32, kValues, 6, mapper, tech);

    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 6u);
    EXPECT_EQ(cache.size(), 6u);
}

TEST(StoreCache, TechHashSeparatesChips)
{
    TechParams a;
    TechParams b = a;
    EXPECT_EQ(techHash(a), techHash(b));
    b.peRows *= 2;
    EXPECT_NE(techHash(a), techHash(b));
    TechParams c = a;
    c.spadBytes /= 2;
    EXPECT_NE(techHash(a), techHash(c));

    // Two chips through one cache (the hw-sweep bench pattern).
    Mapper ma(a), mb(b);
    KernelStoreCache cache;
    const OpNode op = matmulOp(128, 512, 256);
    (void)cache.getOrCompile(op, kValues, 6, ma, a);
    (void)cache.getOrCompile(op, kValues, 6, mb, b);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(StoreCache, ClearEvictsEverything)
{
    TechParams tech;
    Mapper mapper(tech);
    KernelStoreCache cache;
    const OpNode op = matmulOp(128, 512, 256);

    (void)cache.getOrCompile(op, kValues, 6, mapper, tech);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    (void)cache.getOrCompile(op, kValues, 6, mapper, tech);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(StoreCache, ConcurrentBuildsProduceIdenticalStores)
{
    // Many threads populating one cache (and one shared mapper) with
    // overlapping keys: every lookup of a key must come back equal
    // to the serial compile, and the cache must end up with exactly
    // the distinct-key count.
    TechParams tech;
    Mapper shared(tech);
    KernelStoreCache cache;

    const std::vector<OpNode> ops{
        matmulOp(128, 512, 256), matmulOp(128, 768, 256),
        matmulOp(64, 512, 512), matmulOp(128, 1024, 128)};
    std::vector<KernelStore> reference;
    for (const OpNode &op : ops) {
        Mapper fresh(tech);
        reference.push_back(
            compileStore(op, kValues, 6, fresh, tech));
    }

    constexpr std::size_t kTasks = 32;
    ThreadPool pool(4);
    std::vector<int> ok(kTasks, 0);
    pool.parallelFor(kTasks, [&](std::size_t i) {
        const OpNode &op = ops[i % ops.size()];
        const auto store =
            cache.getOrCompile(op, kValues, 6, shared, tech);
        ok[i] = sameStore(*store, reference[i % ops.size()]) ? 1 : 0;
    });

    for (std::size_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(ok[i], 1) << "task " << i;
    EXPECT_EQ(cache.size(), ops.size());
    // Racers may double-compile a key, but every lookup is counted.
    EXPECT_EQ(cache.hits() + cache.misses(), kTasks);
    EXPECT_GE(cache.hits(), kTasks - 2 * ops.size());
}
