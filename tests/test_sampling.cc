/**
 * @file
 * Unit tests for the multi-kernel sampling algorithms (Section VII,
 * Algorithms 1 and 2): frequency redistribution conservation,
 * punishment/saving move selection, convergence, and the bucketing
 * of raw value histograms onto kernel sets.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/sampling.hh"

namespace {

using namespace adyna;
using namespace adyna::core;

double
sum(const std::vector<double> &v)
{
    return std::accumulate(v.begin(), v.end(), 0.0);
}

// ------------------------------------------- redistributeFrequencies

TEST(Redistribute, ConservesTotalMass)
{
    const std::vector<std::int64_t> vals{10, 20, 30, 40};
    const std::vector<double> freq{5, 10, 15, 20};
    const std::vector<std::int64_t> newVals{10, 25, 40};
    const auto out = redistributeFrequencies(vals, freq, newVals);
    ASSERT_EQ(out.size(), newVals.size());
    EXPECT_NEAR(sum(out), sum(freq), 1e-9);
}

TEST(Redistribute, IdentityWhenSetsMatch)
{
    const std::vector<std::int64_t> vals{10, 20, 30};
    const std::vector<double> freq{1, 2, 3};
    const auto out = redistributeFrequencies(vals, freq, vals);
    for (std::size_t i = 0; i < vals.size(); ++i)
        EXPECT_NEAR(out[i], freq[i], 1e-9);
}

TEST(Redistribute, UniformSplitInsideRange)
{
    // Mass 8 on range (10, 20]; a new sample at 15 takes half.
    const std::vector<std::int64_t> vals{10, 20};
    const std::vector<double> freq{4, 8};
    const std::vector<std::int64_t> newVals{10, 15, 20};
    const auto out = redistributeFrequencies(vals, freq, newVals);
    EXPECT_NEAR(out[0], 4.0, 1e-9);
    EXPECT_NEAR(out[1], 4.0, 1e-9);
    EXPECT_NEAR(out[2], 4.0, 1e-9);
}

TEST(Redistribute, MassBelowSmallestGoesToFirst)
{
    const std::vector<std::int64_t> vals{5, 20};
    const std::vector<double> freq{7, 1};
    const std::vector<std::int64_t> newVals{10, 20};
    const auto out = redistributeFrequencies(vals, freq, newVals);
    // The (0,5] mass is served by the 10-kernel.
    EXPECT_NEAR(out[0], 7.0 + 1.0 * (10.0 - 5.0) / 15.0, 1e-9);
    EXPECT_NEAR(sum(out), 8.0, 1e-9);
}

TEST(Redistribute, EmptyRangeMassFallsUpward)
{
    // No new sample inside (10, 20]: its mass must not vanish.
    const std::vector<std::int64_t> vals{10, 20, 40};
    const std::vector<double> freq{1, 6, 1};
    const std::vector<std::int64_t> newVals{10, 40};
    const auto out = redistributeFrequencies(vals, freq, newVals);
    EXPECT_NEAR(sum(out), 8.0, 1e-9);
    EXPECT_NEAR(out[1], 7.0, 1e-9); // 6 from (10,20] + 1 own
}

// ------------------------------------------------- resampleKernelValues

TEST(Resample, MovesSamplesTowardMass)
{
    // All the mass sits in (30, 40]; sparse elsewhere.
    std::vector<std::int64_t> vals{10, 20, 30, 40};
    std::vector<double> freq{0.0, 0.0, 0.0, 100.0};
    const auto out = resampleKernelValues(vals, freq, 8);
    // The max value is always kept.
    EXPECT_EQ(out.back(), 40);
    // At least one new sample inside (30, 40).
    bool inside = false;
    for (std::int64_t v : out)
        inside |= v > 30 && v < 40;
    EXPECT_TRUE(inside);
    // Sorted and unique.
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_LT(out[i - 1], out[i]);
}

TEST(Resample, KeepsSizeConstant)
{
    std::vector<std::int64_t> vals{8, 16, 24, 32, 40};
    std::vector<double> freq{1, 1, 50, 1, 1};
    const auto out = resampleKernelValues(vals, freq, 16);
    EXPECT_EQ(out.size(), vals.size());
}

TEST(Resample, UniformDistributionIsStable)
{
    // Already-balanced samples: no move should be profitable enough
    // to run away; output stays a valid sorted cover of the range.
    std::vector<std::int64_t> vals{32, 64, 96, 128};
    std::vector<double> freq{25, 25, 25, 25};
    const auto out = resampleKernelValues(vals, freq, 16);
    EXPECT_EQ(out.back(), 128);
    EXPECT_GE(out.size(), 3u);
}

TEST(Resample, TinySetsPassThrough)
{
    std::vector<std::int64_t> vals{64, 128};
    std::vector<double> freq{1, 1};
    EXPECT_EQ(resampleKernelValues(vals, freq, 4), vals);
}

TEST(Resample, NeverRemovesMaxValue)
{
    std::vector<std::int64_t> vals{10, 64, 128};
    std::vector<double> freq{100, 100, 0}; // max has no mass
    const auto out = resampleKernelValues(vals, freq, 8);
    EXPECT_EQ(out.back(), 128);
}

TEST(Resample, ReducesExpectedMismatchOnSkewedLoad)
{
    // Quantitative check of the objective: expected (v_k - v) loss
    // under the true distribution must not increase.
    const std::int64_t maxV = 1024;
    std::vector<std::int64_t> vals;
    for (int i = 1; i <= 8; ++i)
        vals.push_back(maxV * i / 8);
    // True distribution: concentrated around 600.
    auto massAt = [](std::int64_t v) {
        return v >= 550 && v <= 650 ? 1.0 : 0.0;
    };
    auto loss = [&](const std::vector<std::int64_t> &ks) {
        double total = 0.0;
        for (std::int64_t v = 1; v <= maxV; ++v) {
            const auto it =
                std::lower_bound(ks.begin(), ks.end(), v);
            total += massAt(v) * static_cast<double>(*it - v);
        }
        return total;
    };
    std::vector<double> freq(vals.size(), 0.0);
    for (std::int64_t v = 1; v <= maxV; ++v) {
        const auto it = std::lower_bound(vals.begin(), vals.end(), v);
        freq[static_cast<std::size_t>(it - vals.begin())] += massAt(v);
    }
    const auto out = resampleKernelValues(vals, freq, 16);
    EXPECT_LE(loss(out), loss(vals));
    EXPECT_LT(loss(out), 0.8 * loss(vals)); // strictly better here
}

// ------------------------------------------------- bucketFrequencies

TEST(Bucket, MapsValuesToCoveringKernel)
{
    FreqHistogram h;
    h.add(5, 3);   // -> kernel 10
    h.add(10, 2);  // -> kernel 10
    h.add(11, 4);  // -> kernel 20
    h.add(99, 1);  // above max -> kernel 20
    const auto freq = bucketFrequencies(h, {10, 20});
    ASSERT_EQ(freq.size(), 2u);
    EXPECT_DOUBLE_EQ(freq[0], 5.0);
    EXPECT_DOUBLE_EQ(freq[1], 5.0);
}

TEST(Bucket, EmptyInputs)
{
    FreqHistogram h;
    EXPECT_TRUE(bucketFrequencies(h, {}).empty());
    const auto freq = bucketFrequencies(h, {10});
    ASSERT_EQ(freq.size(), 1u);
    EXPECT_DOUBLE_EQ(freq[0], 0.0);
}

} // namespace
