/**
 * @file
 * Tests for the DynNN model zoo: every workload parses into a valid
 * dynamic operator graph, exposes the expected dynamism category,
 * yields sane routing traces, and has compute demands in the right
 * ballpark for its published backbone.
 */

#include <gtest/gtest.h>

#include "graph/parser.hh"
#include "models/models.hh"
#include "trace/trace.hh"

namespace {

using namespace adyna;
using namespace adyna::graph;
using namespace adyna::models;
using namespace adyna::trace;

class AllWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllWorkloads, BuildsAndParses)
{
    const ModelBundle bundle = buildByName(GetParam(), 32);
    bundle.graph.validate();
    const DynGraph dg = parseModel(bundle.graph);
    EXPECT_FALSE(dg.switches().empty());
    EXPECT_FALSE(dg.dynamicOps().empty());
    EXPECT_GT(dg.worstCaseMacs(), 0);
}

TEST_P(AllWorkloads, TraceGenerationIsConsistent)
{
    const ModelBundle bundle = buildByName(GetParam(), 32);
    const DynGraph dg = parseModel(bundle.graph);
    TraceConfig cfg = bundle.traceConfig;
    cfg.batchSize = 32;
    TraceGenerator gen(dg, cfg, 7);
    for (int i = 0; i < 10; ++i) {
        const BatchRouting r = gen.next();
        for (OpId op : dg.dynamicOps()) {
            const std::int64_t v = r.dynValue(dg, op);
            EXPECT_GE(v, 0) << dg.graph().node(op).name;
            EXPECT_LE(v, dg.maxDyn(op)) << dg.graph().node(op).name;
        }
    }
}

TEST_P(AllWorkloads, DynamicSavingsAreRealized)
{
    // The expected per-batch MACs under the trace must be strictly
    // below the worst case: that gap is the entire premise of DynNNs.
    const ModelBundle bundle = buildByName(GetParam(), 32);
    const DynGraph dg = parseModel(bundle.graph);
    TraceConfig cfg = bundle.traceConfig;
    cfg.batchSize = 32;
    TraceGenerator gen(dg, cfg, 11);
    const auto exp = gen.profileExpectations(100);
    std::vector<std::pair<OpId, double>> pairs(exp.begin(), exp.end());
    const double expected = dg.expectedMacs(pairs);
    const double worst = static_cast<double>(dg.worstCaseMacs());
    EXPECT_LT(expected, 0.92 * worst) << GetParam();
    EXPECT_GT(expected, 0.05 * worst) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ModelZoo, AllWorkloads,
                         ::testing::Values("skipnet", "pabee", "fbsnet",
                                           "tutel-moe", "dpsnet",
                                           "adavit"),
                         [](const auto &ti) {
                             std::string n = ti.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(ModelZoo, WorkloadNamesAreTheFivePaperModels)
{
    const auto names = workloadNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "skipnet");
    EXPECT_EQ(names[4], "dpsnet");
}

TEST(ModelZoo, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)buildByName("resnext", 8),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(SkipNet, HasEightSkipGatesAndRestoredBatches)
{
    const ModelBundle bundle = buildSkipNet(64);
    const DynGraph dg = parseModel(bundle.graph);
    ASSERT_EQ(dg.switches().size(), 8u);
    for (const SwitchInfo &sw : dg.switches()) {
        EXPECT_FALSE(sw.hasSink);
        EXPECT_NE(sw.mergeOp, kInvalidOp);
        // Merge restores the full batch: post-merge ops static.
        EXPECT_FALSE(dg.isDynamic(sw.mergeOp));
    }
}

TEST(SkipNet, WorstCaseMacsNearResNet18)
{
    // ResNet-18 is ~1.8 GMACs per image.
    const ModelBundle bundle = buildSkipNet(1);
    const double gmacs =
        static_cast<double>(bundle.graph.totalMacs()) / 1e9;
    EXPECT_GT(gmacs, 1.0);
    EXPECT_LT(gmacs, 3.0);
}

TEST(Pabee, TwelveLayersElevenGates)
{
    const ModelBundle bundle = buildPabee(16);
    const DynGraph dg = parseModel(bundle.graph);
    EXPECT_EQ(dg.switches().size(), 11u);
    for (const SwitchInfo &sw : dg.switches()) {
        EXPECT_TRUE(sw.hasSink);
        EXPECT_EQ(dg.graph().node(sw.switchOp).policy.unitsPerSample,
                  128);
    }
}

TEST(Pabee, ExitTraceSavesAboutFortyPercent)
{
    const ModelBundle bundle = buildPabee(64);
    const DynGraph dg = parseModel(bundle.graph);
    TraceGenerator gen(dg, bundle.traceConfig, 3);
    const auto exp = gen.profileExpectations(200);
    std::vector<std::pair<OpId, double>> pairs(exp.begin(), exp.end());
    const double ratio = dg.expectedMacs(pairs) /
                         static_cast<double>(dg.worstCaseMacs());
    // PABEE reports ~1.6x average saving: ratio ~0.55-0.72.
    EXPECT_GT(ratio, 0.45);
    EXPECT_LT(ratio, 0.80);
}

TEST(FbsNet, SevenPrunedLayersWithEightBlocks)
{
    const ModelBundle bundle = buildFbsNet(16);
    const DynGraph dg = parseModel(bundle.graph);
    ASSERT_EQ(dg.switches().size(), 7u);
    for (const SwitchInfo &sw : dg.switches())
        EXPECT_EQ(sw.numBranches(), 8);
}

TEST(TutelMoe, ExpertWeightsFillOnChipBuffers)
{
    // The paper sizes Tutel-MoE to fill the 72 MB of on-chip SRAM.
    const ModelBundle bundle = buildTutelMoe(128);
    const Bytes weights = bundle.graph.totalWeightBytes();
    EXPECT_GT(weights, Bytes{30} << 20);
    EXPECT_LT(weights, Bytes{80} << 20);
}

TEST(TutelMoe, RoutesTokensNotImages)
{
    const ModelBundle bundle = buildTutelMoe(16);
    const DynGraph dg = parseModel(bundle.graph);
    TraceGenerator gen(dg, bundle.traceConfig, 5);
    const BatchRouting r = gen.next();
    int moeSwitches = 0;
    for (const SwitchInfo &sw : dg.switches()) {
        if (dg.graph().node(sw.switchOp).policy.kind !=
            RoutingPolicy::Kind::TopKExperts)
            continue;
        ++moeSwitches;
        const auto &oc = r.outcomes.at(sw.switchOp);
        std::int64_t total = 0;
        for (std::int64_t c : oc.branchCounts)
            total += c;
        // top-2 over 16 x 196 token rows.
        EXPECT_EQ(total, 2 * 16 * 196);
    }
    EXPECT_EQ(moeSwitches, 2);
}

TEST(DpsNet, FoldsTo8192RowsAtBatch128)
{
    const ModelBundle bundle = buildDpsNet(128);
    const DynGraph dg = parseModel(bundle.graph);
    std::int64_t maxDyn = 0;
    for (OpId op : dg.dynamicOps())
        maxDyn = std::max(maxDyn, dg.maxDyn(op));
    EXPECT_EQ(maxDyn, 8192);
}

TEST(DpsNet, HeadIsStaticAfterUnfold)
{
    const ModelBundle bundle = buildDpsNet(32);
    const DynGraph dg = parseModel(bundle.graph);
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "head") {
            EXPECT_FALSE(dg.isDynamic(n.id));
            EXPECT_EQ(n.dims.n(), 32);
        }
    }
}

TEST(AdaVit, NestsSkipInsidePatchSelect)
{
    const ModelBundle bundle = buildAdaVit(16);
    const DynGraph dg = parseModel(bundle.graph);
    int patchSel = 0, skips = 0;
    for (const SwitchInfo &sw : dg.switches()) {
        const auto kind = dg.graph().node(sw.switchOp).policy.kind;
        patchSel += kind == RoutingPolicy::Kind::PatchSelect;
        skips += kind == RoutingPolicy::Kind::LayerSkip;
    }
    EXPECT_EQ(patchSel, 1);
    EXPECT_EQ(skips, 4);
    // Head static again after the unfold merge.
    for (const OpNode &n : dg.graph().nodes()) {
        if (n.name == "head") {
            EXPECT_FALSE(dg.isDynamic(n.id));
        }
    }
}

TEST(AdaVit, SkipRowsBoundedByKeptPatches)
{
    const ModelBundle bundle = buildAdaVit(16);
    const DynGraph dg = parseModel(bundle.graph);
    TraceGenerator gen(dg, bundle.traceConfig, 9);
    for (int i = 0; i < 20; ++i) {
        const BatchRouting r = gen.next();
        std::int64_t kept = -1;
        for (const SwitchInfo &sw : dg.switches()) {
            const auto &node = dg.graph().node(sw.switchOp);
            const auto &oc = r.outcomes.at(sw.switchOp);
            if (node.policy.kind == RoutingPolicy::Kind::PatchSelect)
                kept = oc.branchCounts[0];
        }
        ASSERT_GT(kept, 0);
        for (const SwitchInfo &sw : dg.switches()) {
            const auto &node = dg.graph().node(sw.switchOp);
            if (node.policy.kind != RoutingPolicy::Kind::LayerSkip)
                continue;
            const auto &oc = r.outcomes.at(sw.switchOp);
            // Skip+run rows together equal the kept patch rows.
            EXPECT_EQ(oc.branchCounts[0] + oc.branchCounts[1], kept);
        }
    }
}

} // namespace
