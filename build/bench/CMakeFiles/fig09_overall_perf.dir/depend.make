# Empty dependencies file for fig09_overall_perf.
# This may be replaced when dependencies are built.
