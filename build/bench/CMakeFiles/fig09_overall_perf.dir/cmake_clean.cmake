file(REMOVE_RECURSE
  "CMakeFiles/fig09_overall_perf.dir/fig09_overall_perf.cc.o"
  "CMakeFiles/fig09_overall_perf.dir/fig09_overall_perf.cc.o.d"
  "fig09_overall_perf"
  "fig09_overall_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_overall_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
