file(REMOVE_RECURSE
  "CMakeFiles/abl_sampling.dir/abl_sampling.cc.o"
  "CMakeFiles/abl_sampling.dir/abl_sampling.cc.o.d"
  "abl_sampling"
  "abl_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
