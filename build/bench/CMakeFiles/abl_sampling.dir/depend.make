# Empty dependencies file for abl_sampling.
# This may be replaced when dependencies are built.
