file(REMOVE_RECURSE
  "CMakeFiles/abl_kernel_budget.dir/abl_kernel_budget.cc.o"
  "CMakeFiles/abl_kernel_budget.dir/abl_kernel_budget.cc.o.d"
  "abl_kernel_budget"
  "abl_kernel_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_kernel_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
