# Empty dependencies file for abl_kernel_budget.
# This may be replaced when dependencies are built.
