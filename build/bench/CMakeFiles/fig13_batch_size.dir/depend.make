# Empty dependencies file for fig13_batch_size.
# This may be replaced when dependencies are built.
