# Empty dependencies file for abl_hybrid_adavit.
# This may be replaced when dependencies are built.
