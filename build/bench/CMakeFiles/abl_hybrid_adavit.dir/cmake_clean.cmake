file(REMOVE_RECURSE
  "CMakeFiles/abl_hybrid_adavit.dir/abl_hybrid_adavit.cc.o"
  "CMakeFiles/abl_hybrid_adavit.dir/abl_hybrid_adavit.cc.o.d"
  "abl_hybrid_adavit"
  "abl_hybrid_adavit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hybrid_adavit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
