file(REMOVE_RECURSE
  "CMakeFiles/abl_reconfig_interval.dir/abl_reconfig_interval.cc.o"
  "CMakeFiles/abl_reconfig_interval.dir/abl_reconfig_interval.cc.o.d"
  "abl_reconfig_interval"
  "abl_reconfig_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reconfig_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
