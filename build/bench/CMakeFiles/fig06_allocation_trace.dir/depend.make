# Empty dependencies file for fig06_allocation_trace.
# This may be replaced when dependencies are built.
