file(REMOVE_RECURSE
  "CMakeFiles/fig06_allocation_trace.dir/fig06_allocation_trace.cc.o"
  "CMakeFiles/fig06_allocation_trace.dir/fig06_allocation_trace.cc.o.d"
  "fig06_allocation_trace"
  "fig06_allocation_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_allocation_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
