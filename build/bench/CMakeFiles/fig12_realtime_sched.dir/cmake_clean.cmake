file(REMOVE_RECURSE
  "CMakeFiles/fig12_realtime_sched.dir/fig12_realtime_sched.cc.o"
  "CMakeFiles/fig12_realtime_sched.dir/fig12_realtime_sched.cc.o.d"
  "fig12_realtime_sched"
  "fig12_realtime_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_realtime_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
