# Empty dependencies file for fig12_realtime_sched.
# This may be replaced when dependencies are built.
