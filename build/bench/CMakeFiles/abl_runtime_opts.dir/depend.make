# Empty dependencies file for abl_runtime_opts.
# This may be replaced when dependencies are built.
