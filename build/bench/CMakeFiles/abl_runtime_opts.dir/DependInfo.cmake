
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_runtime_opts.cc" "bench/CMakeFiles/abl_runtime_opts.dir/abl_runtime_opts.cc.o" "gcc" "bench/CMakeFiles/abl_runtime_opts.dir/abl_runtime_opts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/adyna_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adyna_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/adyna_models.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/adyna_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/adyna_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/adyna_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/adyna_des.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/adyna_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adyna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adyna_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
