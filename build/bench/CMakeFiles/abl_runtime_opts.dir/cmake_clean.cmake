file(REMOVE_RECURSE
  "CMakeFiles/abl_runtime_opts.dir/abl_runtime_opts.cc.o"
  "CMakeFiles/abl_runtime_opts.dir/abl_runtime_opts.cc.o.d"
  "abl_runtime_opts"
  "abl_runtime_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_runtime_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
