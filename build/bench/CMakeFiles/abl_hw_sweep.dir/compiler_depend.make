# Empty compiler generated dependencies file for abl_hw_sweep.
# This may be replaced when dependencies are built.
