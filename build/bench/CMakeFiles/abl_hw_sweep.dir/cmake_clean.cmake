file(REMOVE_RECURSE
  "CMakeFiles/abl_hw_sweep.dir/abl_hw_sweep.cc.o"
  "CMakeFiles/abl_hw_sweep.dir/abl_hw_sweep.cc.o.d"
  "abl_hw_sweep"
  "abl_hw_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hw_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
