# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_des[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_costmodel[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_report_io[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_opts[1]_include.cmake")
include("/root/repo/build/tests/test_validate_replay[1]_include.cmake")
