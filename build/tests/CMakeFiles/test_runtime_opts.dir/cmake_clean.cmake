file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_opts.dir/test_runtime_opts.cc.o"
  "CMakeFiles/test_runtime_opts.dir/test_runtime_opts.cc.o.d"
  "test_runtime_opts"
  "test_runtime_opts.pdb"
  "test_runtime_opts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
