# Empty compiler generated dependencies file for test_runtime_opts.
# This may be replaced when dependencies are built.
