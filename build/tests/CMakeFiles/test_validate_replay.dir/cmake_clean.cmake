file(REMOVE_RECURSE
  "CMakeFiles/test_validate_replay.dir/test_validate_replay.cc.o"
  "CMakeFiles/test_validate_replay.dir/test_validate_replay.cc.o.d"
  "test_validate_replay"
  "test_validate_replay.pdb"
  "test_validate_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_validate_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
