
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_des.cc" "tests/CMakeFiles/test_des.dir/test_des.cc.o" "gcc" "tests/CMakeFiles/test_des.dir/test_des.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/adyna_des.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adyna_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
