# Empty dependencies file for early_exit_nlp.
# This may be replaced when dependencies are built.
