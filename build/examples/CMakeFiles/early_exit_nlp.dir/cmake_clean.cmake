file(REMOVE_RECURSE
  "CMakeFiles/early_exit_nlp.dir/early_exit_nlp.cc.o"
  "CMakeFiles/early_exit_nlp.dir/early_exit_nlp.cc.o.d"
  "early_exit_nlp"
  "early_exit_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_exit_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
