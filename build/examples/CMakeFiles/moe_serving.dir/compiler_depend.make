# Empty compiler generated dependencies file for moe_serving.
# This may be replaced when dependencies are built.
