file(REMOVE_RECURSE
  "CMakeFiles/moe_serving.dir/moe_serving.cc.o"
  "CMakeFiles/moe_serving.dir/moe_serving.cc.o.d"
  "moe_serving"
  "moe_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
