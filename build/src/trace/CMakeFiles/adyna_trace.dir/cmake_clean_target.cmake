file(REMOVE_RECURSE
  "libadyna_trace.a"
)
