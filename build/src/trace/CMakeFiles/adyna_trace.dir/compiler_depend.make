# Empty compiler generated dependencies file for adyna_trace.
# This may be replaced when dependencies are built.
