file(REMOVE_RECURSE
  "CMakeFiles/adyna_trace.dir/replay.cc.o"
  "CMakeFiles/adyna_trace.dir/replay.cc.o.d"
  "CMakeFiles/adyna_trace.dir/trace.cc.o"
  "CMakeFiles/adyna_trace.dir/trace.cc.o.d"
  "libadyna_trace.a"
  "libadyna_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adyna_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
