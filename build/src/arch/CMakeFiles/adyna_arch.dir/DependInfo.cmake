
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/chip.cc" "src/arch/CMakeFiles/adyna_arch.dir/chip.cc.o" "gcc" "src/arch/CMakeFiles/adyna_arch.dir/chip.cc.o.d"
  "/root/repo/src/arch/hbm.cc" "src/arch/CMakeFiles/adyna_arch.dir/hbm.cc.o" "gcc" "src/arch/CMakeFiles/adyna_arch.dir/hbm.cc.o.d"
  "/root/repo/src/arch/noc.cc" "src/arch/CMakeFiles/adyna_arch.dir/noc.cc.o" "gcc" "src/arch/CMakeFiles/adyna_arch.dir/noc.cc.o.d"
  "/root/repo/src/arch/profiler.cc" "src/arch/CMakeFiles/adyna_arch.dir/profiler.cc.o" "gcc" "src/arch/CMakeFiles/adyna_arch.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adyna_common.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/adyna_des.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/adyna_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adyna_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
