file(REMOVE_RECURSE
  "libadyna_arch.a"
)
