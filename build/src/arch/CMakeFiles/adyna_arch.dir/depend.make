# Empty dependencies file for adyna_arch.
# This may be replaced when dependencies are built.
