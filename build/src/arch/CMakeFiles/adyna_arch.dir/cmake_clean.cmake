file(REMOVE_RECURSE
  "CMakeFiles/adyna_arch.dir/chip.cc.o"
  "CMakeFiles/adyna_arch.dir/chip.cc.o.d"
  "CMakeFiles/adyna_arch.dir/hbm.cc.o"
  "CMakeFiles/adyna_arch.dir/hbm.cc.o.d"
  "CMakeFiles/adyna_arch.dir/noc.cc.o"
  "CMakeFiles/adyna_arch.dir/noc.cc.o.d"
  "CMakeFiles/adyna_arch.dir/profiler.cc.o"
  "CMakeFiles/adyna_arch.dir/profiler.cc.o.d"
  "libadyna_arch.a"
  "libadyna_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adyna_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
