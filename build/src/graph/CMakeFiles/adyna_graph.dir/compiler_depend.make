# Empty compiler generated dependencies file for adyna_graph.
# This may be replaced when dependencies are built.
