
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dims.cc" "src/graph/CMakeFiles/adyna_graph.dir/dims.cc.o" "gcc" "src/graph/CMakeFiles/adyna_graph.dir/dims.cc.o.d"
  "/root/repo/src/graph/dot.cc" "src/graph/CMakeFiles/adyna_graph.dir/dot.cc.o" "gcc" "src/graph/CMakeFiles/adyna_graph.dir/dot.cc.o.d"
  "/root/repo/src/graph/dyngraph.cc" "src/graph/CMakeFiles/adyna_graph.dir/dyngraph.cc.o" "gcc" "src/graph/CMakeFiles/adyna_graph.dir/dyngraph.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/adyna_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/adyna_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/op.cc" "src/graph/CMakeFiles/adyna_graph.dir/op.cc.o" "gcc" "src/graph/CMakeFiles/adyna_graph.dir/op.cc.o.d"
  "/root/repo/src/graph/parser.cc" "src/graph/CMakeFiles/adyna_graph.dir/parser.cc.o" "gcc" "src/graph/CMakeFiles/adyna_graph.dir/parser.cc.o.d"
  "/root/repo/src/graph/transforms.cc" "src/graph/CMakeFiles/adyna_graph.dir/transforms.cc.o" "gcc" "src/graph/CMakeFiles/adyna_graph.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adyna_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
