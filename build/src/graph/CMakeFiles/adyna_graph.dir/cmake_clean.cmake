file(REMOVE_RECURSE
  "CMakeFiles/adyna_graph.dir/dims.cc.o"
  "CMakeFiles/adyna_graph.dir/dims.cc.o.d"
  "CMakeFiles/adyna_graph.dir/dot.cc.o"
  "CMakeFiles/adyna_graph.dir/dot.cc.o.d"
  "CMakeFiles/adyna_graph.dir/dyngraph.cc.o"
  "CMakeFiles/adyna_graph.dir/dyngraph.cc.o.d"
  "CMakeFiles/adyna_graph.dir/graph.cc.o"
  "CMakeFiles/adyna_graph.dir/graph.cc.o.d"
  "CMakeFiles/adyna_graph.dir/op.cc.o"
  "CMakeFiles/adyna_graph.dir/op.cc.o.d"
  "CMakeFiles/adyna_graph.dir/parser.cc.o"
  "CMakeFiles/adyna_graph.dir/parser.cc.o.d"
  "CMakeFiles/adyna_graph.dir/transforms.cc.o"
  "CMakeFiles/adyna_graph.dir/transforms.cc.o.d"
  "libadyna_graph.a"
  "libadyna_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adyna_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
