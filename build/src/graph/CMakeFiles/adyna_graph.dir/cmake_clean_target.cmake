file(REMOVE_RECURSE
  "libadyna_graph.a"
)
