# Empty dependencies file for adyna_core.
# This may be replaced when dependencies are built.
