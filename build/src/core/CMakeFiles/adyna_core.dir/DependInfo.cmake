
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/adyna_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/adyna_core.dir/engine.cc.o.d"
  "/root/repo/src/core/report_io.cc" "src/core/CMakeFiles/adyna_core.dir/report_io.cc.o" "gcc" "src/core/CMakeFiles/adyna_core.dir/report_io.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/core/CMakeFiles/adyna_core.dir/sampling.cc.o" "gcc" "src/core/CMakeFiles/adyna_core.dir/sampling.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/adyna_core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/adyna_core.dir/schedule.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/adyna_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/adyna_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/adyna_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/adyna_core.dir/system.cc.o.d"
  "/root/repo/src/core/validate.cc" "src/core/CMakeFiles/adyna_core.dir/validate.cc.o" "gcc" "src/core/CMakeFiles/adyna_core.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adyna_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adyna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/adyna_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/adyna_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/adyna_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/adyna_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/adyna_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
