file(REMOVE_RECURSE
  "libadyna_core.a"
)
