file(REMOVE_RECURSE
  "CMakeFiles/adyna_core.dir/engine.cc.o"
  "CMakeFiles/adyna_core.dir/engine.cc.o.d"
  "CMakeFiles/adyna_core.dir/report_io.cc.o"
  "CMakeFiles/adyna_core.dir/report_io.cc.o.d"
  "CMakeFiles/adyna_core.dir/sampling.cc.o"
  "CMakeFiles/adyna_core.dir/sampling.cc.o.d"
  "CMakeFiles/adyna_core.dir/schedule.cc.o"
  "CMakeFiles/adyna_core.dir/schedule.cc.o.d"
  "CMakeFiles/adyna_core.dir/scheduler.cc.o"
  "CMakeFiles/adyna_core.dir/scheduler.cc.o.d"
  "CMakeFiles/adyna_core.dir/system.cc.o"
  "CMakeFiles/adyna_core.dir/system.cc.o.d"
  "CMakeFiles/adyna_core.dir/validate.cc.o"
  "CMakeFiles/adyna_core.dir/validate.cc.o.d"
  "libadyna_core.a"
  "libadyna_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adyna_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
