file(REMOVE_RECURSE
  "libadyna_kernels.a"
)
