
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/codec.cc" "src/kernels/CMakeFiles/adyna_kernels.dir/codec.cc.o" "gcc" "src/kernels/CMakeFiles/adyna_kernels.dir/codec.cc.o.d"
  "/root/repo/src/kernels/store.cc" "src/kernels/CMakeFiles/adyna_kernels.dir/store.cc.o" "gcc" "src/kernels/CMakeFiles/adyna_kernels.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adyna_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adyna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/adyna_costmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
