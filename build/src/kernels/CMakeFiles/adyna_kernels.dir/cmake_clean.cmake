file(REMOVE_RECURSE
  "CMakeFiles/adyna_kernels.dir/codec.cc.o"
  "CMakeFiles/adyna_kernels.dir/codec.cc.o.d"
  "CMakeFiles/adyna_kernels.dir/store.cc.o"
  "CMakeFiles/adyna_kernels.dir/store.cc.o.d"
  "libadyna_kernels.a"
  "libadyna_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adyna_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
