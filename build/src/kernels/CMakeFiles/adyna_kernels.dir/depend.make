# Empty dependencies file for adyna_kernels.
# This may be replaced when dependencies are built.
