file(REMOVE_RECURSE
  "libadyna_des.a"
)
