# Empty dependencies file for adyna_des.
# This may be replaced when dependencies are built.
