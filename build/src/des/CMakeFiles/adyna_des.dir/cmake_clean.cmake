file(REMOVE_RECURSE
  "CMakeFiles/adyna_des.dir/resource.cc.o"
  "CMakeFiles/adyna_des.dir/resource.cc.o.d"
  "CMakeFiles/adyna_des.dir/simulator.cc.o"
  "CMakeFiles/adyna_des.dir/simulator.cc.o.d"
  "libadyna_des.a"
  "libadyna_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adyna_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
