
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/area.cc" "src/costmodel/CMakeFiles/adyna_costmodel.dir/area.cc.o" "gcc" "src/costmodel/CMakeFiles/adyna_costmodel.dir/area.cc.o.d"
  "/root/repo/src/costmodel/cost.cc" "src/costmodel/CMakeFiles/adyna_costmodel.dir/cost.cc.o" "gcc" "src/costmodel/CMakeFiles/adyna_costmodel.dir/cost.cc.o.d"
  "/root/repo/src/costmodel/mapper.cc" "src/costmodel/CMakeFiles/adyna_costmodel.dir/mapper.cc.o" "gcc" "src/costmodel/CMakeFiles/adyna_costmodel.dir/mapper.cc.o.d"
  "/root/repo/src/costmodel/mapping.cc" "src/costmodel/CMakeFiles/adyna_costmodel.dir/mapping.cc.o" "gcc" "src/costmodel/CMakeFiles/adyna_costmodel.dir/mapping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adyna_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adyna_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
