file(REMOVE_RECURSE
  "CMakeFiles/adyna_costmodel.dir/area.cc.o"
  "CMakeFiles/adyna_costmodel.dir/area.cc.o.d"
  "CMakeFiles/adyna_costmodel.dir/cost.cc.o"
  "CMakeFiles/adyna_costmodel.dir/cost.cc.o.d"
  "CMakeFiles/adyna_costmodel.dir/mapper.cc.o"
  "CMakeFiles/adyna_costmodel.dir/mapper.cc.o.d"
  "CMakeFiles/adyna_costmodel.dir/mapping.cc.o"
  "CMakeFiles/adyna_costmodel.dir/mapping.cc.o.d"
  "libadyna_costmodel.a"
  "libadyna_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adyna_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
