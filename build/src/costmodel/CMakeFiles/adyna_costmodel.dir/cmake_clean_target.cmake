file(REMOVE_RECURSE
  "libadyna_costmodel.a"
)
