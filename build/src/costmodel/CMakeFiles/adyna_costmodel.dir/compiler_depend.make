# Empty compiler generated dependencies file for adyna_costmodel.
# This may be replaced when dependencies are built.
