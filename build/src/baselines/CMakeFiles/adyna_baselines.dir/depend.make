# Empty dependencies file for adyna_baselines.
# This may be replaced when dependencies are built.
