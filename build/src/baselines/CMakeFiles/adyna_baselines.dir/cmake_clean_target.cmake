file(REMOVE_RECURSE
  "libadyna_baselines.a"
)
