file(REMOVE_RECURSE
  "CMakeFiles/adyna_baselines.dir/designs.cc.o"
  "CMakeFiles/adyna_baselines.dir/designs.cc.o.d"
  "CMakeFiles/adyna_baselines.dir/gpu.cc.o"
  "CMakeFiles/adyna_baselines.dir/gpu.cc.o.d"
  "CMakeFiles/adyna_baselines.dir/realtime.cc.o"
  "CMakeFiles/adyna_baselines.dir/realtime.cc.o.d"
  "libadyna_baselines.a"
  "libadyna_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adyna_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
