# Empty dependencies file for adyna_models.
# This may be replaced when dependencies are built.
