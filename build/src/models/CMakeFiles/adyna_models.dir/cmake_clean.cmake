file(REMOVE_RECURSE
  "CMakeFiles/adyna_models.dir/models.cc.o"
  "CMakeFiles/adyna_models.dir/models.cc.o.d"
  "CMakeFiles/adyna_models.dir/random.cc.o"
  "CMakeFiles/adyna_models.dir/random.cc.o.d"
  "libadyna_models.a"
  "libadyna_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adyna_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
