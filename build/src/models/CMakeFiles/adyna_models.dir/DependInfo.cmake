
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/models.cc" "src/models/CMakeFiles/adyna_models.dir/models.cc.o" "gcc" "src/models/CMakeFiles/adyna_models.dir/models.cc.o.d"
  "/root/repo/src/models/random.cc" "src/models/CMakeFiles/adyna_models.dir/random.cc.o" "gcc" "src/models/CMakeFiles/adyna_models.dir/random.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adyna_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adyna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/adyna_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
