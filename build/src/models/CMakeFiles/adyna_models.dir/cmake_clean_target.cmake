file(REMOVE_RECURSE
  "libadyna_models.a"
)
