file(REMOVE_RECURSE
  "CMakeFiles/adyna_common.dir/cli.cc.o"
  "CMakeFiles/adyna_common.dir/cli.cc.o.d"
  "CMakeFiles/adyna_common.dir/logging.cc.o"
  "CMakeFiles/adyna_common.dir/logging.cc.o.d"
  "CMakeFiles/adyna_common.dir/rng.cc.o"
  "CMakeFiles/adyna_common.dir/rng.cc.o.d"
  "CMakeFiles/adyna_common.dir/stats.cc.o"
  "CMakeFiles/adyna_common.dir/stats.cc.o.d"
  "CMakeFiles/adyna_common.dir/table.cc.o"
  "CMakeFiles/adyna_common.dir/table.cc.o.d"
  "libadyna_common.a"
  "libadyna_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adyna_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
