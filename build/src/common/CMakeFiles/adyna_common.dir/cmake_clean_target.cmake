file(REMOVE_RECURSE
  "libadyna_common.a"
)
