# Empty dependencies file for adyna_common.
# This may be replaced when dependencies are built.
