/**
 * @file
 * Authoring a custom hybrid DynNN with the unified representation
 * (Section IV): a vision model combining patch selection (dynamic
 * region), a mixture-of-experts layer (dynamic routing), and an
 * early exit (dynamic depth). The example prints the parsed dynamic
 * operator graph, exports Graphviz DOT, and simulates it.
 *
 *   ./examples/custom_model [--dot out.dot] [--batches N]
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "baselines/designs.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "graph/dot.hh"
#include "graph/parser.hh"
#include "graph/transforms.hh"

using namespace adyna;
using graph::LoopDims;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const auto batches = static_cast<int>(args.getInt("batches", 80));
    const std::int64_t batch = args.getInt("batch", 64);
    constexpr std::int64_t kPatches = 16;
    constexpr std::int64_t kHidden = 256;
    const std::int64_t rows = batch * kPatches;

    graph::Graph g("custom-hybrid");

    // Patch-folded input: every image contributes 16 patch rows.
    OpId in = g.addInput("patches", LoopDims::matmul(rows, 768, 768));
    OpId emb = g.addMatMul("embed", in, kHidden, 768);

    // 1. Dynamic region: keep ~half the patches per image.
    OpId select = graph::addPatchSelect(g, "select", emb, 0.5, 0);
    g.node(select).policy.unitsPerSample = kPatches;

    OpId body = graph::buildBranch(g, select, 0, [&](graph::Graph &gg,
                                                     OpId s) {
        // 2. Dynamic routing: a 4-expert MoE over the kept rows.
        OpId moe = graph::addMoE(
            gg, "moe", s, /*experts=*/4, /*top_k=*/1,
            /*bias=*/{2.0, 1.5, 1.0, 0.5},
            [&](graph::Graph &g2, OpId sw) {
                OpId up = g2.addMatMul("moe.up", sw, 4 * kHidden,
                                       kHidden);
                return g2.addMatMul("moe.down", up, kHidden,
                                    4 * kHidden);
            });
        return gg.addMatMul("mixer", moe, kHidden, kHidden);
    });

    // Aggregate patch rows back to one row per image.
    OpId agg = g.addUnfoldMerge("aggregate", {body},
                                LoopDims::matmul(batch, kHidden,
                                                 kHidden));

    // 3. Dynamic depth: easy images exit before the refinement layer.
    OpId exitSw = graph::addEarlyExit(g, "gate", agg, 10, 0.45, 1);
    OpId refined = graph::buildBranch(
        g, exitSw, 1, [&](graph::Graph &gg, OpId s) {
            return gg.addMatMul("refine", s, kHidden, kHidden);
        });
    OpId head = g.addMatMul("head", refined, 10, kHidden);
    g.addOutput("logits", head);

    // Parse and inspect.
    const graph::DynGraph dg = graph::parseModel(g);
    std::printf("%s\n", dg.summary().c_str());

    const std::string dotPath = args.getString("dot", "");
    if (!dotPath.empty()) {
        std::ofstream out(dotPath);
        out << graph::toDot(dg);
        std::printf("Wrote Graphviz DOT to %s\n\n", dotPath.c_str());
    }

    // Simulate.
    trace::TraceConfig cfg;
    cfg.batchSize = batch;
    const arch::HwConfig hw;
    TextTable t("Hybrid model on every design (" +
                std::to_string(batches) + " batches)");
    t.header({"design", "time (ms)", "PE util"});
    for (auto d : baselines::allDesigns()) {
        auto sys = baselines::makeSystem(dg, cfg, hw, d, batches, 3);
        const auto rep = sys.run();
        t.row({rep.design, TextTable::num(rep.timeMs, 2),
               TextTable::pct(rep.peUtilization)});
    }
    t.print(std::cout);
    return 0;
}
