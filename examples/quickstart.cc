/**
 * @file
 * Quickstart: build a small dynamic-depth network with the switch /
 * merge API, parse it into a dynamic operator graph, and run it on
 * Adyna and on the worst-case M-tile baseline.
 *
 *   ./examples/quickstart [--batches N] [--batch B] [--seed S]
 */

#include <cstdio>
#include <iostream>

#include "baselines/designs.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "graph/parser.hh"
#include "graph/transforms.hh"

using namespace adyna;

namespace {

/**
 * A toy dynamic-depth CNN: stem conv, then two residual blocks that
 * each sample may skip, then a classifier. Easy samples skip both
 * blocks; hard samples run everything.
 */
graph::Graph
buildModel(std::int64_t batch)
{
    using graph::LoopDims;
    graph::Graph g("quickstart-dyncnn");

    OpId image =
        g.addInput("image", LoopDims::conv(batch, 3, 3, 64, 64, 1, 1));
    OpId stem = g.addConv(
        "stem", image, LoopDims::conv(batch, 32, 3, 32, 32, 3, 3), 2);

    OpId cur = stem;
    for (int i = 0; i < 2; ++i) {
        const std::string name = "block" + std::to_string(i);
        // addLayerSkip inserts the gate classifier, the switch, the
        // branch body, and the merge (Figure 5(c) of the paper).
        cur = graph::addLayerSkip(
            g, name, cur, /*skip_prob=*/0.4, /*gate_index=*/i,
            [&](graph::Graph &gg, OpId sw) {
                OpId c1 = gg.addConv(
                    name + ".conv1", sw,
                    LoopDims::conv(batch, 32, 32, 32, 32, 3, 3));
                OpId act = gg.addFusable(
                    name + ".relu", graph::OpKind::Act, {c1},
                    LoopDims::conv(batch, 32, 32, 32, 32, 1, 1));
                return gg.addConv(
                    name + ".conv2", act,
                    LoopDims::conv(batch, 32, 32, 32, 32, 3, 3));
            });
    }

    OpId gap = g.addFusable("gap", graph::OpKind::Pool, {cur},
                            LoopDims::conv(batch, 32, 32, 1, 1, 32, 32),
                            32);
    OpId fc = g.addMatMul("classifier", gap, 10, 32);
    g.addOutput("logits", fc);
    return g;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const auto batches = static_cast<int>(args.getInt("batches", 100));
    const auto batch = args.getInt("batch", 64);
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));

    // 1. Build the user-level model and parse it (Section IV).
    graph::Graph model = buildModel(batch);
    const graph::DynGraph dg = graph::parseModel(model);
    std::printf("Parsed dynamic operator graph:\n%s\n",
                dg.summary().c_str());

    // 2. Describe the dynamism (this substitutes for a dataset).
    trace::TraceConfig traceCfg;
    traceCfg.batchSize = batch;

    // 3. Run on Adyna and on the worst-case M-tile baseline.
    const arch::HwConfig hw;
    TextTable t("Results (" + std::to_string(batches) + " batches of " +
                std::to_string(batch) + ")");
    t.header({"design", "time (ms)", "batches/s", "PE util",
              "energy (J)", "kernels stored"});
    double mtileMs = 0.0;
    for (auto design : {baselines::Design::MTile,
                        baselines::Design::AdynaStatic,
                        baselines::Design::Adyna}) {
        auto sys = baselines::makeSystem(dg, traceCfg, hw, design,
                                         batches, seed);
        const auto rep = sys.run();
        if (design == baselines::Design::MTile)
            mtileMs = rep.timeMs;
        t.row({rep.design, TextTable::num(rep.timeMs, 2),
               TextTable::num(rep.batchesPerSecond, 0),
               TextTable::pct(rep.peUtilization),
               TextTable::num(rep.energy.total() * 1e-12, 2),
               std::to_string(rep.storedKernels)});
    }
    t.print(std::cout);
    std::printf("\nAdyna speedup over the worst-case baseline comes "
                "from executing skipped blocks at their actual "
                "(smaller) batch sizes with fitted kernels and "
                "frequency-weighted tile allocation.\n");
    (void)mtileMs;
    return 0;
}
