/**
 * @file
 * Record / replay workflow: capture a routing trace (in deployment
 * this would come from the hardware profiler observing real
 * requests), save it to a portable text file, and replay it through
 * the simulator. Replayed runs are exactly reproducible and let
 * different design points be compared on the *same* request stream
 * -- or let users evaluate Adyna on routing decisions dumped from a
 * real DynNN serving system.
 *
 *   ./examples/record_replay [--trace /tmp/trace.txt] [--batches N]
 */

#include <cstdio>
#include <iostream>

#include "baselines/designs.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "graph/parser.hh"
#include "models/models.hh"
#include "trace/replay.hh"

using namespace adyna;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const auto batches = static_cast<int>(args.getInt("batches", 80));
    const std::string path =
        args.getString("trace", "/tmp/adyna_demo_trace.txt");

    models::ModelBundle bundle = models::buildSkipNet(64);
    const graph::DynGraph dg = graph::parseModel(bundle.graph);
    trace::TraceConfig cfg = bundle.traceConfig;
    cfg.batchSize = 64;

    // 1. Record: capture a routing stream and persist it.
    trace::TraceGenerator gen(dg, cfg, /*seed=*/21);
    const auto recorded = trace::captureTrace(gen, batches);
    trace::saveTraceFile(path, recorded);
    std::printf("Recorded %d batches of routing decisions to %s\n\n",
                batches, path.c_str());

    // 2. Replay the identical stream through several design points.
    const auto replayed = trace::loadTraceFile(path);
    const arch::HwConfig hw;
    TextTable t("Designs compared on the SAME recorded request "
                "stream");
    t.header({"design", "time (ms)", "PE util"});
    for (auto d : {baselines::Design::MTile,
                   baselines::Design::AdynaStatic,
                   baselines::Design::Adyna}) {
        auto sys = baselines::makeSystem(dg, cfg, hw, d, batches, 21);
        sys.setReplay(replayed);
        const auto rep = sys.run();
        t.row({rep.design, TextTable::num(rep.timeMs, 2),
               TextTable::pct(rep.peUtilization)});
    }
    t.print(std::cout);

    // 3. Replays are bit-identical across runs.
    auto again = baselines::makeSystem(
        dg, cfg, hw, baselines::Design::Adyna, batches, 21);
    again.setReplay(replayed);
    auto once = baselines::makeSystem(
        dg, cfg, hw, baselines::Design::Adyna, batches, 21);
    once.setReplay(replayed);
    const bool identical = again.run().cycles == once.run().cycles;
    std::printf("\nReplay determinism: %s\n",
                identical ? "identical cycle counts" : "MISMATCH");
    return identical ? 0 : 1;
}
