/**
 * @file
 * MoE serving scenario: Tutel-MoE under drifting expert popularity
 * (the request mix changes over the day). Shows the profiler ->
 * scheduler feedback loop at work: as drift grows, the static
 * schedule degrades while Adyna's periodic re-allocation and kernel
 * re-sampling (every 40 batches) keep tracking the distribution.
 *
 *   ./examples/moe_serving [--batches N] [--seed S]
 */

#include <cstdio>
#include <iostream>

#include "baselines/designs.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "graph/parser.hh"
#include "models/models.hh"

using namespace adyna;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const auto batches = static_cast<int>(args.getInt("batches", 360));
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 11));

    models::ModelBundle bundle = models::buildTutelMoe(128);
    const graph::DynGraph dg = graph::parseModel(bundle.graph);

    std::printf("Tutel-MoE serving: %zu ops, %zu MoE layers with 8 "
                "experts each (top-2 routing); expert popularity "
                "re-drawn every 120 batches.\n\n",
                dg.graph().size(), dg.switches().size());

    const arch::HwConfig hw;
    TextTable t("Static schedule vs adaptive Adyna as expert "
                "popularity drift grows (" +
                std::to_string(batches) + " batches)");
    t.header({"drift strength", "Adyna (static) ms", "Adyna ms",
              "adaptive gain", "reconfigs"});
    for (double drift : {0.0, 0.3, 0.6, 0.9}) {
        trace::TraceConfig cfg = bundle.traceConfig;
        cfg.driftStrength = drift;
        cfg.driftPeriod = 120;

        auto statSys = baselines::makeSystem(
            dg, cfg, hw, baselines::Design::AdynaStatic, batches,
            seed);
        auto dynSys = baselines::makeSystem(
            dg, cfg, hw, baselines::Design::Adyna, batches, seed);
        const auto stat = statSys.run();
        const auto dyn = dynSys.run();
        t.row({TextTable::num(drift, 1), TextTable::num(stat.timeMs, 1),
               TextTable::num(dyn.timeMs, 1),
               TextTable::mult(stat.timeMs / dyn.timeMs),
               std::to_string(dyn.reconfigurations)});
    }
    t.print(std::cout);
    std::printf("\nThe adaptive gain grows with drift: the static "
                "schedule's initial profile and kernel set go stale, "
                "while Adyna re-reads the hardware profiler's "
                "frequency tables, re-balances the expert tiles "
                "(including the tile-sharing ratios), and re-samples "
                "the kernel values every 40 batches.\n");
    return 0;
}
