/**
 * @file
 * Early-exit NLP scenario: PABEE (BERT-base with per-layer exits) at
 * different exit aggressiveness levels -- the patience knob an NLP
 * service would tune. For each level the example reports throughput
 * and energy on Adyna and how much of the theoretical compute saving
 * the hardware actually realizes (the paper's core motivation:
 * theoretical DynNN savings do not materialize on dynamism-unaware
 * hardware).
 *
 *   ./examples/early_exit_nlp [--batches N] [--seed S]
 */

#include <cstdio>
#include <iostream>

#include "baselines/designs.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "graph/parser.hh"
#include "models/models.hh"
#include "trace/trace.hh"

using namespace adyna;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const auto batches = static_cast<int>(args.getInt("batches", 120));
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 5));
    const arch::HwConfig hw;

    std::printf("PABEE early-exit serving: scaling every gate's exit "
                "fraction by an aggressiveness factor.\n\n");

    TextTable t("Exit aggressiveness sweep (Adyna, " +
                std::to_string(batches) + " batches)");
    t.header({"aggressiveness", "theoretical MACs", "time (ms)",
              "realized speedup", "energy (J)"});

    double baseMs = 0.0;
    for (double aggr : {0.0, 0.5, 1.0, 1.5}) {
        models::ModelBundle bundle = models::buildPabee(128);
        // Scale the marginal exit fraction of every gate.
        for (auto &node : const_cast<std::vector<graph::OpNode> &>(
                 bundle.graph.nodes())) {
            if (node.kind == graph::OpKind::Switch)
                node.policy.param =
                    std::min(1.0, node.policy.param * aggr);
        }
        const graph::DynGraph dg = graph::parseModel(bundle.graph);

        // Theoretical saving from the trace alone.
        trace::TraceGenerator probe(dg, bundle.traceConfig, seed);
        const auto exps = probe.profileExpectations(60);
        std::vector<std::pair<OpId, double>> pairs(exps.begin(),
                                                   exps.end());
        const double theoretical =
            dg.expectedMacs(pairs) /
            static_cast<double>(dg.worstCaseMacs());

        auto sys = baselines::makeSystem(dg, bundle.traceConfig, hw,
                                         baselines::Design::Adyna,
                                         batches, seed);
        const auto rep = sys.run();
        if (aggr == 0.0)
            baseMs = rep.timeMs;
        t.row({TextTable::num(aggr, 1),
               TextTable::pct(theoretical) + " of static",
               TextTable::num(rep.timeMs, 1),
               TextTable::mult(baseMs / rep.timeMs),
               TextTable::num(rep.energy.total() * 1e-12, 1)});
    }
    t.print(std::cout);
    std::printf("\nThe realized speedup tracks the theoretical "
                "compute saving because Adyna executes each exit "
                "level with fitted kernels and rebalanced tiles; a "
                "worst-case accelerator would realize none of it.\n");
    return 0;
}
